//! Integration tests for the migratable thread package: scheduling,
//! all four stack flavors, privatized globals, and migration.

use flows_core::{
    awaken, current, iso_free, iso_malloc, suspend, yield_now, GlobalsLayoutBuilder,
    PrivatizeMode, SchedConfig, Scheduler, SharedPools, StackFlavor, ThreadState,
};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

fn sched() -> Scheduler {
    Scheduler::new(0, SharedPools::new_for_tests(), SchedConfig::default())
}

#[test]
fn lazy_iso_spawns_need_no_slots_until_first_run() {
    // Million-thread mode: spawning must not consume region slots (the
    // test pool has only 64 per PE), and running the backlog recycles a
    // handful of slabs through the warm cache rather than holding one
    // slot per thread.
    let shared = SharedPools::new_for_tests();
    let s = Scheduler::new(
        0,
        shared.clone(),
        SchedConfig {
            lazy_iso: true,
            ..SchedConfig::default()
        },
    );
    let done = Rc::new(Cell::new(0u32));
    for _ in 0..500 {
        let done = done.clone();
        s.spawn_with(StackFlavor::Isomalloc, 16 * 1024, move || {
            done.set(done.get() + 1);
        })
        .unwrap();
    }
    assert_eq!(
        shared.region().live_slots(0),
        0,
        "unstarted lazy threads own no slots"
    );
    s.run();
    assert_eq!(done.get(), 500);
    assert_eq!(s.stats().completed, 500);
    assert!(
        shared.region().live_slots(0) <= 8,
        "run-to-exit recycles slabs instead of hoarding slots: {}",
        shared.region().live_slots(0)
    );
}

#[test]
fn threads_round_robin_fairly() {
    let s = sched();
    let order = Rc::new(RefCell::new(Vec::new()));
    for name in 0..3u32 {
        let order = order.clone();
        s.spawn(StackFlavor::Standard, move || {
            for _ in 0..3 {
                order.borrow_mut().push(name);
                yield_now();
            }
        })
        .unwrap();
    }
    s.run();
    assert_eq!(
        *order.borrow(),
        vec![0, 1, 2, 0, 1, 2, 0, 1, 2],
        "FIFO yield order must interleave"
    );
    assert_eq!(s.stats().completed, 3);
    assert_eq!(s.thread_count(), 0);
}

#[test]
fn every_flavor_runs_yields_and_completes() {
    for flavor in StackFlavor::ALL {
        let s = sched();
        let hits = Rc::new(Cell::new(0u32));
        for _ in 0..4 {
            let hits = hits.clone();
            s.spawn(flavor, move || {
                for _ in 0..10 {
                    hits.set(hits.get() + 1);
                    yield_now();
                }
            })
            .unwrap();
        }
        s.run();
        assert_eq!(hits.get(), 40, "flavor {}", flavor.name());
        assert_eq!(s.stats().completed, 4, "flavor {}", flavor.name());
    }
}

#[test]
fn suspend_and_awaken_from_sibling() {
    let s = sched();
    let log = Rc::new(RefCell::new(Vec::new()));
    let waiter_id = Rc::new(Cell::new(None));

    let (log1, wid) = (log.clone(), waiter_id.clone());
    let waiter = s
        .spawn(StackFlavor::Standard, move || {
            log1.borrow_mut().push("wait");
            suspend();
            log1.borrow_mut().push("woken");
        })
        .unwrap();
    waiter_id.set(Some(waiter));

    let log2 = log.clone();
    s.spawn(StackFlavor::Standard, move || {
        log2.borrow_mut().push("waker");
        awaken(wid.get().unwrap()).unwrap();
    })
    .unwrap();

    s.run();
    assert_eq!(*log.borrow(), vec!["wait", "waker", "woken"]);
}

#[test]
fn awaken_errors_are_reported() {
    let s = sched();
    let tid = s.spawn(StackFlavor::Standard, || {}).unwrap();
    // Ready, not Suspended:
    assert!(s.awaken_tid(tid).is_err());
    s.run();
    // Gone:
    assert!(s.awaken_tid(tid).is_err());
}

#[test]
fn current_reports_identity() {
    let s = sched();
    let seen = Rc::new(Cell::new(None));
    let seen2 = seen.clone();
    let tid = s
        .spawn(StackFlavor::Standard, move || seen2.set(current()))
        .unwrap();
    assert_eq!(current(), None, "outside a thread");
    s.run();
    assert_eq!(seen.get(), Some(tid));
}

#[test]
fn panicking_thread_is_reaped_without_killing_the_pe() {
    let s = sched();
    let after = Rc::new(Cell::new(false));
    s.spawn(StackFlavor::Standard, || panic!("worker exploded"))
        .unwrap();
    let after2 = after.clone();
    s.spawn(StackFlavor::Standard, move || after2.set(true))
        .unwrap();
    // Quiet the panic backtrace noise.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    s.run();
    std::panic::set_hook(prev);
    assert!(after.get(), "scheduler survived the panic");
    assert_eq!(s.stats().completed, 2);
}

#[test]
fn iso_malloc_works_only_for_isomalloc_threads() {
    let s = sched();
    let ok = Rc::new(Cell::new(0));
    let ok2 = ok.clone();
    s.spawn(StackFlavor::Isomalloc, move || {
        let p = iso_malloc(1024).expect("isomalloc thread gets iso heap");
        // SAFETY: fresh allocation.
        unsafe { std::ptr::write_bytes(p, 0xEE, 1024) };
        assert!(iso_free(p));
        assert!(!iso_free(p), "double free refused");
        ok2.set(ok2.get() + 1);
    })
    .unwrap();
    let ok3 = ok.clone();
    s.spawn(StackFlavor::Standard, move || {
        assert!(iso_malloc(16).is_none(), "standard threads have no iso heap");
        ok3.set(ok3.get() + 1);
    })
    .unwrap();
    s.run();
    assert_eq!(ok.get(), 2);
    assert!(iso_malloc(16).is_none(), "outside threads: no iso heap");
}

#[test]
fn deep_stacks_work_for_all_migratable_flavors() {
    for flavor in [StackFlavor::StackCopy, StackFlavor::Isomalloc, StackFlavor::Alias] {
        let s = sched();
        let got = Rc::new(Cell::new(0u64));
        let got2 = got.clone();
        s.spawn(flavor, move || {
            fn burn(depth: usize, acc: u64) -> u64 {
                let mut pad = [0u8; 256];
                pad[0] = depth as u8;
                std::hint::black_box(&mut pad);
                if depth == 0 {
                    yield_now(); // suspend mid-recursion with a deep stack
                    return acc;
                }
                burn(depth - 1, acc + pad[0] as u64)
            }
            got2.set(burn(100, 0));
        })
        .unwrap();
        s.run();
        assert_eq!(got.get(), (1..=100).sum::<u64>(), "flavor {}", flavor.name());
    }
}

#[test]
fn privatized_globals_swap_per_thread() {
    for mode in [PrivatizeMode::GotSwap, PrivatizeMode::CopyInOut] {
        let mut b = GlobalsLayoutBuilder::new();
        let counter = b.register::<u64>(0);
        let layout = b.finish();
        let s = Scheduler::new(
            0,
            SharedPools::new_for_tests(),
            SchedConfig {
                globals: Some(layout.clone()),
                privatize: mode,
                ..SchedConfig::default()
            },
        );
        let results = Rc::new(RefCell::new(Vec::new()));
        for step in 1..=3u64 {
            let results = results.clone();
            s.spawn(StackFlavor::Standard, move || {
                for _ in 0..5 {
                    counter.set(counter.get() + step);
                    yield_now(); // interleave: privatization must isolate us
                }
                results.borrow_mut().push(counter.get());
            })
            .unwrap();
        }
        s.run();
        let mut r = results.borrow().clone();
        r.sort();
        assert_eq!(r, vec![5, 10, 15], "mode {mode:?}: each thread its own copy");
        // The main block never saw thread values.
        layout.install_main();
        assert_eq!(counter.get(), 0, "mode {mode:?}");
    }
}

// ---------------------------------------------------------------------------
// Migration
// ---------------------------------------------------------------------------

/// A worker that computes in two phases with a suspension between them,
/// keeping state in locals (stack) and, for isomalloc, in the iso heap.
fn two_phase_worker(result: Rc<Cell<u64>>, use_iso_heap: bool) -> impl FnOnce() + 'static {
    move || {
        let mut acc: u64 = 0;
        let heap_buf = if use_iso_heap {
            let p = iso_malloc(4096).expect("iso heap") as *mut u64;
            // SAFETY: fresh 4096-byte allocation.
            unsafe {
                for i in 0..512 {
                    *p.add(i) = i as u64;
                }
            }
            Some(p)
        } else {
            None
        };
        for i in 0..100u64 {
            acc += i * i;
        }
        suspend(); // ---- migration happens here ----
        for i in 100..200u64 {
            acc += i * i;
        }
        if let Some(p) = heap_buf {
            // SAFETY: the heap migrated with us; same address.
            unsafe {
                for i in 0..512 {
                    acc += *p.add(i);
                }
            }
            assert!(iso_free(p as *mut u8));
        }
        result.set(acc);
    }
}

fn expected_two_phase(use_iso_heap: bool) -> u64 {
    let mut acc: u64 = (0..200u64).map(|i| i * i).sum();
    if use_iso_heap {
        acc += (0..512u64).sum::<u64>();
    }
    acc
}

#[test]
fn migration_preserves_execution_all_flavors() {
    for flavor in [StackFlavor::Isomalloc, StackFlavor::StackCopy, StackFlavor::Alias] {
        let shared = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
        let pe1 = Scheduler::new(1, shared.clone(), SchedConfig::default());
        let result = Rc::new(Cell::new(0u64));
        let use_heap = flavor == StackFlavor::Isomalloc;
        let tid = pe0
            .spawn(flavor, two_phase_worker(result.clone(), use_heap))
            .unwrap();
        pe0.run(); // phase 1, thread suspends
        assert_eq!(pe0.state(tid), Some(ThreadState::Suspended));

        let packed = pe0.pack_thread(tid).unwrap();
        assert_eq!(pe0.thread_count(), 0);
        // Ship as raw bytes, like a network would.
        let bytes = packed.to_bytes();
        let arrived = flows_core::PackedThread::from_bytes(&bytes).unwrap();
        let tid2 = pe1.unpack_thread(arrived).unwrap();
        assert_eq!(tid2, tid);

        pe1.awaken_tid(tid).unwrap();
        pe1.run(); // phase 2 on the new PE
        assert_eq!(
            result.get(),
            expected_two_phase(use_heap),
            "flavor {}",
            flavor.name()
        );
        assert_eq!(pe0.stats().migrations_out, 1);
        assert_eq!(pe1.stats().migrations_in, 1);
        assert_eq!(pe1.stats().completed, 1);
    }
}

#[test]
fn migration_carries_privatized_globals() {
    let mut b = GlobalsLayoutBuilder::new();
    let g = b.register::<u64>(7);
    let layout = b.finish();
    let cfg = |l: &std::sync::Arc<flows_core::GlobalsLayout>| SchedConfig {
        globals: Some(l.clone()),
        ..SchedConfig::default()
    };
    let shared = SharedPools::new_for_tests();
    let pe0 = Scheduler::new(0, shared.clone(), cfg(&layout));
    let pe1 = Scheduler::new(1, shared.clone(), cfg(&layout));
    let out = Rc::new(Cell::new(0u64));
    let out2 = out.clone();
    let tid = pe0
        .spawn(StackFlavor::Isomalloc, move || {
            g.set(g.get() + 1000); // 1007, in MY copy
            suspend();
            out2.set(g.get()); // must still be 1007 after migration
        })
        .unwrap();
    pe0.run();
    flows_core::migrate::migrate(&pe0, &pe1, tid).unwrap();
    pe1.awaken_tid(tid).unwrap();
    pe1.run();
    assert_eq!(out.get(), 1007);
}

#[test]
fn migration_of_ready_thread_requeues_on_destination() {
    let shared = SharedPools::new_for_tests();
    let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
    let pe1 = Scheduler::new(1, shared, SchedConfig::default());
    let result = Rc::new(Cell::new(0u64));
    let tid = pe0
        .spawn(StackFlavor::Isomalloc, {
            let result = result.clone();
            move || {
                result.set(1);
                yield_now(); // goes Ready, still queued
                result.set(2);
            }
        })
        .unwrap();
    // Run exactly one burst: thread yields and is Ready again.
    assert!(pe0.step());
    assert_eq!(result.get(), 1);
    assert_eq!(pe0.state(tid), Some(ThreadState::Ready));
    flows_core::migrate::migrate(&pe0, &pe1, tid).unwrap();
    assert_eq!(pe0.runnable(), 0);
    assert_eq!(pe1.runnable(), 1, "ready thread joins destination queue");
    pe1.run();
    assert_eq!(result.get(), 2);
}

#[test]
fn migration_rejects_invalid_candidates() {
    let shared = SharedPools::new_for_tests();
    let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());

    // Unstarted thread: entry closure not serializable.
    let t1 = pe0.spawn(StackFlavor::Isomalloc, suspend).unwrap();
    assert!(pe0.pack_thread(t1).is_err(), "unstarted");

    // Standard flavor: not migratable, even after starting.
    let t2 = pe0.spawn(StackFlavor::Standard, suspend).unwrap();
    pe0.run();
    assert!(pe0.pack_thread(t2).is_err(), "standard flavor");

    // Missing thread.
    assert!(pe0.pack_thread(flows_core::ThreadId(999_999)).is_err());

    // Now started + suspended isomalloc thread migrates fine...
    let packed = pe0.pack_thread(t1).unwrap();
    // ...but unpacking twice on one PE collides.
    let pe1 = Scheduler::new(1, shared, SchedConfig::default());
    pe1.unpack_thread(packed.clone()).unwrap();
    assert!(pe1.unpack_thread(packed).is_err(), "duplicate id");
}

#[test]
fn migration_respects_swap_kind() {
    let shared = SharedPools::new_for_tests();
    let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
    let pe1 = Scheduler::new(
        1,
        shared,
        SchedConfig {
            swap_kind: flows_arch::SwapKind::Full,
            ..SchedConfig::default()
        },
    );
    let tid = pe0.spawn(StackFlavor::Isomalloc, suspend).unwrap();
    pe0.run();
    let packed = pe0.pack_thread(tid).unwrap();
    assert!(
        pe1.unpack_thread(packed).is_err(),
        "minimal-swap thread cannot land on a full-swap scheduler"
    );
}

#[test]
fn corrupt_migration_images_are_rejected() {
    let shared = SharedPools::new_for_tests();
    let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
    let tid = pe0.spawn(StackFlavor::StackCopy, suspend).unwrap();
    pe0.run();
    let bytes = pe0.pack_thread(tid).unwrap().to_bytes();
    assert!(flows_core::PackedThread::from_bytes(&bytes[..bytes.len() / 3]).is_err());
    let pe1 = Scheduler::new(1, shared, SchedConfig::default());
    let mut evil = bytes.clone();
    let n = evil.len();
    evil[n - 1] ^= 0xFF;
    if let Ok(p) = flows_core::PackedThread::from_bytes(&evil) {
        // If the frame survived byte surgery, unpack must still either
        // succeed or error — never crash.
        let _ = pe1.unpack_thread(p);
    }
}

#[test]
fn many_threads_many_switches() {
    // A miniature version of the paper's "tens of thousands of user-level
    // threads" claim, kept test-sized: 500 threads, 10 yields each.
    let s = sched();
    let total = Rc::new(Cell::new(0u64));
    for _ in 0..500 {
        let total = total.clone();
        s.spawn(StackFlavor::Standard, move || {
            for _ in 0..10 {
                total.set(total.get() + 1);
                yield_now();
            }
        })
        .unwrap();
    }
    s.run();
    assert_eq!(total.get(), 5000);
    assert!(s.stats().switches >= 5000);
}

#[test]
fn priorities_order_execution() {
    let s = sched();
    let order = Rc::new(RefCell::new(Vec::new()));
    // Spawn in reverse-priority order: priority decides, not spawn order.
    for (prio, name) in [(5i32, "low"), (0, "mid"), (-5, "high")] {
        let order = order.clone();
        s.spawn_prio(StackFlavor::Standard, 32 * 1024, prio, move || {
            order.borrow_mut().push(name);
        })
        .unwrap();
    }
    s.run();
    assert_eq!(*order.borrow(), vec!["high", "mid", "low"]);
}

#[test]
fn equal_priorities_round_robin_and_set_priority_takes_effect() {
    let s = sched();
    let order = Rc::new(RefCell::new(Vec::new()));
    // Two equal-priority chatterers interleave FIFO...
    for name in ["a", "b"] {
        let order = order.clone();
        s.spawn(StackFlavor::Standard, move || {
            for _ in 0..2 {
                order.borrow_mut().push(name);
                flows_core::yield_now();
            }
        })
        .unwrap();
    }
    // ...until one demotes itself mid-run.
    let order2 = order.clone();
    s.spawn_prio(StackFlavor::Standard, 32 * 1024, -1, move || {
        order2.borrow_mut().push("urgent");
        flows_core::set_priority(100).unwrap(); // drop to the back
        flows_core::yield_now();
        order2.borrow_mut().push("last");
    })
    .unwrap();
    s.run();
    let o = order.borrow().clone();
    assert_eq!(o[0], "urgent", "highest priority runs first");
    assert_eq!(*o.last().unwrap(), "last", "after self-demotion it runs last");
    assert_eq!(o[1..5], ["a", "b", "a", "b"], "equal priorities stay FIFO");
}

#[test]
fn migration_preserves_priority() {
    let shared = SharedPools::new_for_tests();
    let pe0 = Scheduler::new(0, shared.clone(), SchedConfig::default());
    let pe1 = Scheduler::new(1, shared, SchedConfig::default());
    let order = Rc::new(RefCell::new(Vec::new()));
    let o2 = order.clone();
    let urgent = pe0
        .spawn_prio(StackFlavor::Isomalloc, 32 * 1024, -9, move || {
            suspend();
            o2.borrow_mut().push("urgent");
        })
        .unwrap();
    pe0.run();
    flows_core::migrate::migrate(&pe0, &pe1, urgent).unwrap();
    // A default-priority local thread spawned first...
    let o3 = order.clone();
    pe1.spawn(StackFlavor::Standard, move || o3.borrow_mut().push("normal"))
        .unwrap();
    pe1.awaken_tid(urgent).unwrap();
    pe1.run();
    // ...still loses to the migrated urgent thread.
    assert_eq!(*order.borrow(), vec!["urgent", "normal"]);
}

#[test]
fn local_switches_never_remap() {
    // The tentpole invariant of the windowed alias design: once a thread's
    // frame is mapped into its private window, local context switches
    // touch no VM syscalls at all — for *any* flavor. A probe thread
    // snapshots the (thread-local) counters mid-run, after every peer has
    // started, so spawn/exit costs are excluded by construction.
    use flows_mem::probe::syscall_snapshot;
    for flavor in StackFlavor::ALL {
        let s = sched();
        for _ in 0..3 {
            s.spawn(flavor, || {
                for _ in 0..40 {
                    yield_now();
                }
            })
            .unwrap();
        }
        let delta = Rc::new(RefCell::new(None));
        let d2 = delta.clone();
        s.spawn(flavor, move || {
            // A few warm-up yields guarantee all peers are past first
            // resume (entry setup) before the measurement window opens.
            for _ in 0..8 {
                yield_now();
            }
            let before = syscall_snapshot();
            for _ in 0..24 {
                yield_now();
            }
            *d2.borrow_mut() = Some(syscall_snapshot().since(&before));
        })
        .unwrap();
        s.run();
        let d = delta.borrow().expect("probe thread ran");
        assert_eq!(d.remap, 0, "flavor {}: local switches must not remap", flavor.name());
        assert_eq!(d.mmap + d.munmap, 0, "flavor {}: no map churn", flavor.name());
        assert_eq!(d.mprotect + d.madvise, 0, "flavor {}: no protection/discard", flavor.name());
        assert_eq!(d.fallocate + d.ftruncate, 0, "flavor {}: memfd untouched", flavor.name());
        assert_eq!(d.pread + d.pwrite, 0, "flavor {}: no frame I/O", flavor.name());
    }
}

#[test]
fn thread_churn_is_syscall_free_after_warmup() {
    // Slot/stack/frame recycling: after one warm-up tenancy per flavor,
    // create/run/exit must allocate no new address space. The syscall
    // counters are thread-local, so concurrent tests don't pollute the
    // deltas.
    use flows_mem::probe::syscall_snapshot;
    for flavor in StackFlavor::ALL {
        let s = sched();
        // Warm up: populate the free lists / warm slots / stack caches.
        for _ in 0..2 {
            s.spawn(flavor, || {
                yield_now();
            })
            .unwrap();
        }
        s.run();

        let before = syscall_snapshot();
        for _ in 0..16 {
            s.spawn(flavor, || {
                yield_now();
            })
            .unwrap();
            s.run();
        }
        let d = syscall_snapshot().since(&before);
        assert_eq!(d.mmap, 0, "flavor {}: no new mappings after warm-up", flavor.name());
        assert_eq!(d.munmap, 0, "flavor {}: nothing unmapped", flavor.name());
        assert_eq!(d.mprotect, 0, "flavor {}: no protection flips", flavor.name());
        assert_eq!(d.ftruncate, 0, "flavor {}: memfd never regrows", flavor.name());
        assert_eq!(s.stats().completed, 18, "flavor {}", flavor.name());
    }
}
