//! Exhaustive interleaving checks of the StealMesh request/donate
//! handshake (`crates/core/src/steal.rs`).
//!
//! The load-bearing invariant is that `in_flight()` (the `inbox_len`
//! mirror) never undercounts the packed threads physically sitting in
//! an inbox. The quiescence detector reads the mirror at arbitrary
//! instants, so the invariant is checked after *every* step of every
//! schedule — each check is one possible detector read. An undercount
//! window lets the machine declare itself idle while stolen threads
//! are still in transit; `donate()` therefore bumps the mirror
//! *before* extending the inbox (transient overcount is harmless — the
//! detector just polls again). These models prove the count-first
//! order and demonstrate that the inbox-first order is broken.

use flows_check::interleave::{Explorer, Step};

/// `inbox` is the physical vector length, `counter` the `inbox_len`
/// mirror the detector reads.
#[derive(Clone, Default)]
struct Mesh {
    inbox: u64,
    counter: u64,
    absorbed: u64,
}

/// A detector read at this instant must not see fewer threads than the
/// inbox physically holds — `counter == 0 && inbox > 0` is exactly the
/// state in which quiescence would misfire.
fn never_undercounts(s: &Mesh) -> Result<(), String> {
    if s.counter < s.inbox {
        return Err(format!(
            "inbox_len mirror undercounts: counter {} < inbox {} — a \
             quiescence probe here declares idle over threads in transit",
            s.counter, s.inbox
        ));
    }
    Ok(())
}

#[test]
fn count_first_donation_never_undercounts() {
    let ex = Explorer::new(vec![
        // donate(): fetch_add first, then lock + extend.
        vec![
            Step::new("bump-counter", |s: &mut Mesh| s.counter += 1),
            Step::new("push-inbox", |s| s.inbox += 1),
        ],
        // absorb(): blocks until a thread is actually present (the real
        // caller re-polls from its idle loop), takes the inbox under
        // the lock, subtracts exactly what it took.
        vec![Step::guarded("absorb", |s| s.counter > 0 && s.inbox > 0, |s| {
            let took = s.inbox;
            s.inbox = 0;
            s.counter -= took;
            s.absorbed += took;
        })],
    ]);
    let n = ex.check(&Mesh::default(), never_undercounts).expect("count-first is safe");
    assert!(n >= 1, "explored at least one complete schedule");
}

#[test]
fn inbox_first_donation_lets_quiescence_misfire() {
    // The pre-fix order: extend the inbox, then bump the mirror. The
    // explorer must find the state where the inbox holds a thread the
    // mirror does not yet count.
    let ex = Explorer::new(vec![
        vec![
            Step::new("push-inbox", |s: &mut Mesh| s.inbox += 1),
            Step::new("bump-counter", |s| s.counter += 1),
        ],
        vec![Step::guarded("absorb", |s| s.counter > 0 && s.inbox > 0, |s| {
            let took = s.inbox;
            s.inbox = 0;
            s.counter -= took;
            s.absorbed += took;
        })],
    ]);
    let v = ex
        .check(&Mesh::default(), never_undercounts)
        .expect_err("undercount window must be discoverable");
    assert!(
        v.schedule.iter().any(|step| step.contains("push-inbox")),
        "violation happens inside donate()'s window: {v}"
    );
}

/// Thief-side request/absorb against victim-side drain/donate: the
/// whole handshake, every interleaving.
#[derive(Clone, Default)]
struct Hand {
    request: bool,
    counter: u64,
    inbox: u64,
    absorbed: u64,
}

#[test]
fn full_request_donate_absorb_handshake_is_clean() {
    let ex = Explorer::new(vec![
        // Thief: fetch_or the request bit, then (eventually) absorb.
        vec![
            Step::new("request", |s: &mut Hand| s.request = true),
            Step::guarded("absorb", |s| s.counter > 0 && s.inbox > 0, |s| {
                let took = s.inbox;
                s.inbox = 0;
                s.counter -= took;
                s.absorbed += took;
            }),
        ],
        // Victim: the pump boundary swaps the request word, packs a
        // chunk, donates it count-first.
        vec![
            Step::guarded("take-requests", |s| s.request, |s| s.request = false),
            Step::new("bump-counter", |s| s.counter += 1),
            Step::new("push-inbox", |s| s.inbox += 1),
        ],
    ]);
    let n = ex
        .check(&Hand::default(), |s| {
            if s.counter < s.inbox {
                return Err(format!(
                    "mirror undercounts: counter {} < inbox {}",
                    s.counter, s.inbox
                ));
            }
            if s.absorbed > 1 {
                return Err(format!("thread duplicated: absorbed {}", s.absorbed));
            }
            Ok(())
        })
        .expect("handshake is clean in every schedule");
    // Reaching here also proves liveness: a schedule where the guarded
    // absorb could never run (donation lost) would be a deadlock
    // violation, and every complete schedule absorbed the chunk.
    assert!(n >= 1);
}
