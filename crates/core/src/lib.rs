//! # flows-core — migratable user-level threads
//!
//! The paper's primary contribution: a user-level thread package in the
//! style of Converse threads ("Cth", §2.3) whose threads can *migrate*
//! between processors (§3.4), in any of four stack flavors:
//!
//! * [`StackFlavor::Standard`] — ordinary heap-allocated stacks; fastest,
//!   not migratable (the paper's plain Cth threads);
//! * [`StackFlavor::StackCopy`] — one common stack address, data memcpy'd
//!   in/out per switch (§3.4.1);
//! * [`StackFlavor::Isomalloc`] — globally unique stack+heap addresses per
//!   thread, migration is a raw byte copy (§3.4.2);
//! * [`StackFlavor::Alias`] — per-thread physical frames remapped over one
//!   common address per switch (§3.4.3).
//!
//! A [`Scheduler`] owns the threads of one PE (processing element). Code
//! running *inside* a thread interacts with the package through the free
//! functions [`yield_now`], [`suspend`], [`current`], [`awaken`] and the
//! isomalloc heap hooks [`iso_malloc`]/[`iso_free`] — never through
//! references captured before a suspension, which would dangle after a
//! migration.
//!
//! Global-variable privatization (the paper's ELF-GOT "swap-global"
//! scheme, §3.1.1) is in [`privatize`]: each thread carries its own copy
//! of the registered globals, and the scheduler swaps one base pointer per
//! context switch.
//!
//! ```
//! use flows_core::{Scheduler, SchedConfig, SharedPools, StackFlavor, yield_now};
//! let shared = SharedPools::new_for_tests();
//! let sched = Scheduler::new(0, shared, SchedConfig::default());
//! let n = std::rc::Rc::new(std::cell::Cell::new(0));
//! for _ in 0..3 {
//!     let n = n.clone();
//!     sched.spawn(StackFlavor::Standard, move || {
//!         for _ in 0..5 { n.set(n.get() + 1); yield_now(); }
//!     }).unwrap();
//! }
//! sched.run();
//! assert_eq!(n.get(), 15);
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod migrate;
pub mod payload;
pub mod privatize;
pub mod scheduler;
pub mod shared;
pub mod steal;
pub mod tcb;

pub use checkpoint::{evacuate, frame_payload, unframe_payload, Checkpoint, FRAME_HEADER_LEN};
pub use migrate::PackedThread;
pub use payload::{ExternRegion, Payload, PayloadBuf, PayloadPool, PoolStats};
pub use privatize::{GlobalVar, GlobalsLayout, GlobalsLayoutBuilder, PrivatizeMode};
pub use scheduler::{
    awaken, current, current_load_ns, iso_free, iso_malloc, seed_tid_namespace, set_priority,
    suspend, yield_now, SchedConfig, SchedStats, Scheduler,
};
pub use shared::SharedPools;
pub use steal::{StealMesh, MAX_STEAL_CHUNK, STEAL_KEEP_MIN};
pub use tcb::{StackFlavor, ThreadId, ThreadState};
