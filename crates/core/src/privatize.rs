//! Swap-global privatization (paper §3.1.1).
//!
//! Kernel threads share one copy of every global variable, which is the
//! single biggest obstacle to porting legacy codes onto threads (§2.2).
//! The paper's solution for ELF platforms is to give each user-level
//! thread its own copy of the Global Offset Table and swap one pointer per
//! context switch. Rust has no patchable GOT, so we reproduce the
//! *mechanism* with an explicit layout: programs register their globals
//! once into a [`GlobalsLayout`]; each thread carries a private block of
//! that layout; a thread-local *base pointer* is swapped on every context
//! switch (the GOT-swap analog — O(1), independent of how many globals
//! exist). [`PrivatizeMode::CopyInOut`] is the ablation alternative that
//! memcpy's the block instead.
//!
//! ```
//! use flows_core::privatize::GlobalsLayoutBuilder;
//! let mut b = GlobalsLayoutBuilder::new();
//! let counter = b.register::<u64>(0);
//! let scale = b.register::<f64>(1.5);
//! let layout = b.finish();
//! // Outside any thread, accesses hit the layout's main block:
//! layout.install_main();
//! counter.set(counter.get() + 1);
//! assert_eq!(counter.get(), 1);
//! assert_eq!(scale.get(), 1.5);
//! ```

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

thread_local! {
    /// Base pointer of the currently installed globals block — the "GOT"
    /// that the scheduler swaps. Also records which layout it belongs to.
    static ACTIVE: Cell<(*mut u8, u64)> = const { Cell::new((std::ptr::null_mut(), 0)) };
}

static LAYOUT_IDS: AtomicU64 = AtomicU64::new(1);

/// How the scheduler privatizes globals at a context switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PrivatizeMode {
    /// Swap the base pointer (the paper's GOT-swap scheme): O(1) per
    /// switch.
    #[default]
    GotSwap,
    /// Copy the thread's block into a fixed buffer on switch-in and back
    /// out on switch-out: O(block size) per switch. Exists to measure what
    /// GOT swapping buys (ablation bench).
    CopyInOut,
}

/// An immutable description of every registered global: sizes, alignments,
/// offsets and initial image.
#[derive(Debug)]
pub struct GlobalsLayout {
    id: u64,
    len: usize,
    init: Vec<u8>,
    /// The block used when no thread is running (the "process globals").
    main: parking_lot::Mutex<Vec<u8>>,
}

impl GlobalsLayout {
    /// Total block length in bytes.
    pub fn block_len(&self) -> usize {
        self.len
    }

    /// Unique id (guards against mixing vars across layouts).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// A fresh private block holding the initial values.
    pub fn new_block(&self) -> Vec<u8> {
        self.init.clone()
    }

    /// Install the layout's *main* block on this OS thread, for code
    /// running outside any user-level thread. (Holds no lock afterwards:
    /// the main block is only sound if a single OS thread uses it, which
    /// matches "the main flow of control" it models.)
    pub fn install_main(self: &Arc<Self>) {
        let ptr = self.main.lock().as_mut_ptr();
        ACTIVE.with(|a| a.set((ptr, self.id)));
    }

    /// Install an arbitrary block (the scheduler's GOT swap). Returns the
    /// previously installed `(ptr, layout_id)` so it can be restored.
    pub fn install_block(&self, block: &mut [u8]) -> (*mut u8, u64) {
        assert_eq!(block.len(), self.len, "block does not match layout");
        ACTIVE.with(|a| a.replace((block.as_mut_ptr(), self.id)))
    }

    /// Restore a previously captured installation.
    pub fn restore(&self, prev: (*mut u8, u64)) {
        ACTIVE.with(|a| a.set(prev));
    }
}

/// Builder: register each global with its initial value, then `finish()`.
#[derive(Debug, Default)]
pub struct GlobalsLayoutBuilder {
    bytes: Vec<u8>,
    id: u64,
}

impl GlobalsLayoutBuilder {
    /// Start a new layout.
    pub fn new() -> GlobalsLayoutBuilder {
        GlobalsLayoutBuilder {
            bytes: Vec::new(),
            id: LAYOUT_IDS.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Register one global of type `T` with initial value `init`,
    /// returning its handle. `T` must be `Copy` (plain data, like a C
    /// global) and is stored at its natural alignment.
    pub fn register<T: Copy + 'static>(&mut self, init: T) -> GlobalVar<T> {
        let align = std::mem::align_of::<T>();
        let size = std::mem::size_of::<T>();
        let off = (self.bytes.len() + align - 1) & !(align - 1);
        self.bytes.resize(off + size, 0);
        // SAFETY: freshly resized range of exactly `size` bytes; T: Copy
        // has no drop obligations.
        unsafe {
            std::ptr::write_unaligned(self.bytes.as_mut_ptr().add(off).cast::<T>(), init);
        }
        GlobalVar {
            offset: off,
            layout_id: self.id,
            _t: PhantomData,
        }
    }

    /// Freeze the layout.
    pub fn finish(self) -> Arc<GlobalsLayout> {
        Arc::new(GlobalsLayout {
            id: self.id,
            len: self.bytes.len(),
            main: parking_lot::Mutex::new(self.bytes.clone()),
            init: self.bytes,
        })
    }
}

/// Handle to one privatized global of type `T` — the analog of a GOT slot.
///
/// Reads and writes go to whichever block is currently installed on this
/// OS thread (the running user-level thread's private copy, or the
/// layout's main block).
#[derive(Debug, Clone, Copy)]
pub struct GlobalVar<T: Copy + 'static> {
    offset: usize,
    layout_id: u64,
    _t: PhantomData<fn() -> T>,
}

impl<T: Copy + 'static> GlobalVar<T> {
    fn base(&self) -> *mut u8 {
        let (ptr, id) = ACTIVE.with(|a| a.get());
        assert!(
            !ptr.is_null(),
            "no globals block installed on this OS thread (run inside a \
             scheduler with a GlobalsLayout, or call install_main)"
        );
        assert_eq!(
            id, self.layout_id,
            "installed globals block belongs to a different GlobalsLayout"
        );
        ptr
    }

    /// Read the current thread's copy.
    pub fn get(&self) -> T {
        // SAFETY: base() checked the installed block matches our layout,
        // whose builder sized and aligned this offset for T.
        unsafe { std::ptr::read_unaligned(self.base().add(self.offset).cast::<T>()) }
    }

    /// Write the current thread's copy.
    pub fn set(&self, v: T) {
        // SAFETY: as in get().
        unsafe { std::ptr::write_unaligned(self.base().add(self.offset).cast::<T>(), v) }
    }

    /// Read-modify-write convenience.
    pub fn update(&self, f: impl FnOnce(T) -> T) {
        self.set(f(self.get()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn main_block_reads_initials_and_persists_writes() {
        let mut b = GlobalsLayoutBuilder::new();
        let x = b.register::<u32>(7);
        let y = b.register::<f64>(2.5);
        let z = b.register::<[u8; 3]>([1, 2, 3]);
        let layout = b.finish();
        layout.install_main();
        assert_eq!(x.get(), 7);
        assert_eq!(y.get(), 2.5);
        assert_eq!(z.get(), [1, 2, 3]);
        x.set(100);
        y.update(|v| v * 2.0);
        assert_eq!(x.get(), 100);
        assert_eq!(y.get(), 5.0);
    }

    #[test]
    fn blocks_are_private_per_installation() {
        let mut b = GlobalsLayoutBuilder::new();
        let x = b.register::<u64>(0);
        let layout = b.finish();
        let mut block_a = layout.new_block();
        let mut block_b = layout.new_block();

        let prev = layout.install_block(&mut block_a);
        x.set(111);
        layout.restore(prev);
        let prev = layout.install_block(&mut block_b);
        assert_eq!(x.get(), 0, "thread B sees its own pristine copy");
        x.set(222);
        layout.restore(prev);
        let prev = layout.install_block(&mut block_a);
        assert_eq!(x.get(), 111, "thread A's value survived B running");
        layout.restore(prev);
        drop((block_a, block_b));
    }

    #[test]
    #[should_panic(expected = "different GlobalsLayout")]
    fn cross_layout_access_is_caught() {
        let mut b1 = GlobalsLayoutBuilder::new();
        let _x1 = b1.register::<u32>(1);
        let l1 = b1.finish();
        let mut b2 = GlobalsLayoutBuilder::new();
        let x2 = b2.register::<u32>(2);
        let _l2 = b2.finish();
        l1.install_main();
        let _ = x2.get();
    }

    #[test]
    fn alignment_is_respected() {
        let mut b = GlobalsLayoutBuilder::new();
        let _a = b.register::<u8>(1);
        let d = b.register::<u64>(0x0123_4567_89AB_CDEF);
        let layout = b.finish();
        layout.install_main();
        assert_eq!(d.get(), 0x0123_4567_89AB_CDEF);
        assert_eq!(layout.block_len() % 8, 0 /* u64 tail */);
    }
}
