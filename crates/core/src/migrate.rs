//! Thread migration: packing a suspended thread into bytes and
//! reinstating it on another PE (paper §3.4).
//!
//! What travels: the live stack bytes, the isomalloc heap (for
//! [`StackFlavor::Isomalloc`]), the privatized globals block, the saved
//! stack pointer and metadata. What does *not* travel: nothing needs to —
//! all three migratable flavors guarantee the stack executes at the same
//! virtual address on the destination, so every pointer in the image stays
//! valid (the paper's central trick).
//!
//! ### Wire format
//! A packed thread is a PUP'd [`Head`] followed by a *raw* flavor payload
//! whose length is the head's last field. The payload is held as an
//! Arc-backed [`Payload`], so the pack side writes the thread's bytes once
//! (straight from the arena into a pooled message buffer), the transport
//! shares the buffer by refcount, and the unpack side copies once into the
//! destination arena. Batched migrations concatenate these records and
//! parse them back with [`PackedThread::from_payload`] — zero-copy slices
//! of the one incoming message.

use crate::payload::Payload;
use crate::scheduler::Scheduler;
use crate::tcb::{FlavorData, StackFlavor, Tcb, ThreadId, ThreadState};
use flows_arch::{Context, SwapKind};
use flows_mem::slab::STACK_RED_ZONE;
use flows_pup::{pup_fields, Pup};
use flows_sys::error::{SysError, SysResult};

/// A thread serialized for migration: a self-describing head plus the raw
/// flavor payload (stack/heap bytes) behind a refcounted buffer.
// flows-image: root
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedThread {
    head: Head,
    payload: Payload,
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Head {
    id: ThreadId,
    swap_kind: u8,
    flavor: u8,
    state: u8,
    sp: u64,
    load_ns: u64,
    priority: i32,
    globals: Option<Vec<u8>>,
    /// Byte length of the raw payload that follows the head on the wire.
    /// Kept as the last head field so the wire layout is head ++ payload.
    payload_len: u64,
}
pup_fields!(Head {
    id,
    swap_kind,
    flavor,
    state,
    sp,
    load_ns,
    priority,
    globals,
    payload_len
});

/// PUP traversal matching the wire format exactly (head, then raw tail) so
/// checkpoints embedding `Vec<PackedThread>` serialize identically to the
/// migration path.
impl Pup for PackedThread {
    fn pup(&mut self, p: &mut flows_pup::Puper) {
        self.head.pup(p);
        if p.is_unpacking() {
            let n = self.head.payload_len as usize;
            // Guard against hostile length prefixes: grow in chunks so a
            // corrupt head hits Truncated before a giant allocation.
            let mut v: Vec<u8> = Vec::with_capacity(n.min(64 * 1024));
            while v.len() < n {
                if p.has_error() {
                    self.payload = Payload::empty();
                    return;
                }
                let start = v.len();
                let chunk = (n - start).min(64 * 1024);
                v.resize(start + chunk, 0);
                p.raw(&mut v[start..]);
            }
            if p.has_error() {
                self.payload = Payload::empty();
                return;
            }
            self.payload = Payload::from_vec(v);
        } else {
            let mut tmp = self.payload.to_vec();
            p.raw(&mut tmp);
        }
    }
}

fn kind_tag(k: SwapKind) -> u8 {
    match k {
        SwapKind::Minimal => 0,
        SwapKind::Full => 1,
        SwapKind::SignalMask => 2,
    }
}

fn tag_kind(t: u8) -> SysResult<SwapKind> {
    Ok(match t {
        0 => SwapKind::Minimal,
        1 => SwapKind::Full,
        2 => SwapKind::SignalMask,
        _ => return Err(SysError::logic("unpack", "bad swap kind tag".into())),
    })
}

/// Stack-flavor wire tag — also the encoding trace events carry
/// (`flows_trace::FLAVOR_NAMES` maps it back to names).
pub(crate) fn flavor_tag(f: StackFlavor) -> u8 {
    match f {
        StackFlavor::StackCopy => 0,
        StackFlavor::Isomalloc => 1,
        StackFlavor::Alias => 2,
        StackFlavor::Standard => 3,
    }
}

impl PackedThread {
    /// The migrating thread's id.
    pub fn id(&self) -> ThreadId {
        self.head.id
    }

    /// Bytes in the image payload (stack + heap data).
    pub fn payload_len(&self) -> usize {
        self.payload.len()
    }

    /// The raw payload, sharable by refcount (for transports that frame
    /// the head and tail themselves).
    pub fn payload(&self) -> &Payload {
        &self.payload
    }

    /// Measured CPU load (ns) of the thread's current epoch, captured at
    /// pack time. Lets a restart path feed real loads to a load balancer
    /// when placing restored threads.
    pub fn load_ns(&self) -> u64 {
        self.head.load_ns
    }

    /// Append the wire image (head ++ raw payload) to `out`; returns the
    /// bytes appended. This is how batched migration packs several threads
    /// into one message.
    pub fn pack_into(&self, out: &mut Vec<u8>) -> usize {
        let start = out.len();
        let mut head = self.head.clone();
        #[cfg(feature = "sanitize")]
        checked_pack_into(&mut head, out);
        #[cfg(not(feature = "sanitize"))]
        flows_pup::pack_into(&mut head, out);
        out.extend_from_slice(self.payload.as_slice());
        out.len() - start
    }

    /// Serialize to raw bytes (for shipping through a message layer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.payload.len());
        self.pack_into(&mut out);
        out
    }

    /// Deserialize from raw bytes (copies the payload; use
    /// [`PackedThread::from_payload`] to share an incoming buffer instead).
    pub fn from_bytes(bytes: &[u8]) -> SysResult<PackedThread> {
        let (head, used): (Head, usize) = flows_pup::from_bytes_prefix(bytes)
            .map_err(|e| SysError::logic("packed_thread", format!("corrupt: {e}")))?;
        if bytes.len() - used != head.payload_len as usize {
            return Err(SysError::logic(
                "packed_thread",
                format!(
                    "payload length mismatch: head says {}, got {}",
                    head.payload_len,
                    bytes.len() - used
                ),
            ));
        }
        Ok(PackedThread {
            payload: Payload::from(&bytes[used..]),
            head,
        })
    }

    /// Parse one packed thread starting at `offset` of a shared buffer.
    /// The payload becomes a zero-copy slice of `wire`. Returns the thread
    /// and the bytes consumed, so callers walk a concatenation of records.
    pub fn from_payload(wire: &Payload, offset: usize) -> SysResult<(PackedThread, usize)> {
        let s = &wire.as_slice()[offset..];
        let (head, used): (Head, usize) = flows_pup::from_bytes_prefix(s)
            .map_err(|e| SysError::logic("packed_thread", format!("corrupt: {e}")))?;
        let plen = head.payload_len as usize;
        if s.len() - used < plen {
            return Err(SysError::logic(
                "packed_thread",
                format!("truncated payload: head says {plen}, {} left", s.len() - used),
            ));
        }
        let payload = wire.slice(offset + used..offset + used + plen);
        Ok((PackedThread { head, payload }, used + plen))
    }
}

/// Pack `v` while validating its PUP contract: the sizing traversal and
/// the packing traversal must agree on the byte count, or every record
/// packed after this one lands at a wrong wire offset. A disagreement
/// trips [`flows_trace::san::SanCheck::PupSize`]. Used on every packed
/// head under `sanitize`; exposed so tests can feed it a lying impl.
#[cfg(feature = "sanitize")]
pub fn checked_pack_into<T: Pup>(v: &mut T, out: &mut Vec<u8>) -> usize {
    let declared = flows_pup::packed_size(v);
    let wrote = flows_pup::pack_into(v, out);
    if wrote != declared {
        flows_trace::san::trip(
            flows_trace::san::SanCheck::PupSize,
            "Pup impl's declared size disagrees with the bytes it packed",
            declared as u64,
            wrote as u64,
        );
    }
    wrote
}

/// Verify a vacated isomalloc slot really is inaccessible, against the
/// kernel's view of the address space. After a migration away, the
/// source PE must not be able to read the slot — a readable vacated slot
/// means a stale-pointer read there would silently return dead bytes
/// instead of faulting. Trips [`flows_trace::san::SanCheck::VacatedSlot`].
/// (A failure to read `/proc/self/maps` is not a detection and is
/// ignored.)
#[cfg(feature = "sanitize")]
pub fn assert_slot_vacated(base: usize, len: usize) {
    if let Ok(false) = flows_mem::maps::range_is_unreadable(base, len) {
        flows_trace::san::trip(
            flows_trace::san::SanCheck::VacatedSlot,
            "migrated-away slot is still readable on the source PE",
            base as u64,
            len as u64,
        );
    }
}

impl Scheduler {
    /// Pack `tid` for migration away from this PE.
    ///
    /// The thread must be started (its entry closure has begun executing),
    /// not currently running, and of a migratable flavor. On success the
    /// thread no longer exists on this PE.
    pub fn pack_thread(&self, tid: ThreadId) -> SysResult<PackedThread> {
        self.pack_thread_inner(tid, false)
    }

    /// [`Scheduler::pack_thread`] for a thread already popped off the run
    /// queue (the steal path uses `RunQueue::steal_tail` first), skipping
    /// the O(queue) removal scan per thread.
    pub(crate) fn pack_thread_unqueued(&self, tid: ThreadId) -> SysResult<PackedThread> {
        self.pack_thread_inner(tid, true)
    }

    fn pack_thread_inner(&self, tid: ThreadId, unqueued: bool) -> SysResult<PackedThread> {
        // SAFETY: single-OS-thread access between context switches.
        let inner = unsafe { &mut *self.inner_ptr() };
        if inner.current == Some(tid) {
            return Err(SysError::logic("pack", format!("{tid} is running")));
        }
        {
            let tcb = inner
                .threads
                .get(&tid)
                .ok_or_else(|| SysError::logic("pack", format!("{tid} is not here")))?;
            if !tcb.started {
                return Err(SysError::logic(
                    "pack",
                    format!("{tid} has not started: its entry closure is not serializable"),
                ));
            }
            if !tcb.flavor.flavor().migratable() {
                return Err(SysError::logic(
                    "pack",
                    format!("{tid} uses a {} stack, which cannot migrate", tcb.flavor.flavor().name()),
                ));
            }
            if !matches!(tcb.state, ThreadState::Ready | ThreadState::Suspended) {
                return Err(SysError::logic(
                    "pack",
                    format!("{tid} is {:?}", tcb.state),
                ));
            }
        }
        let mut tcb = inner.threads.remove(&tid).expect("checked above");
        if !unqueued {
            inner.runq.remove(tid);
        }
        let sp = tcb.ctx.saved_sp();
        let flavor = tcb.flavor.flavor();
        // Replace the flavor data with an empty placeholder so we can move
        // the real resources out of the box.
        let data = std::mem::replace(
            &mut tcb.flavor,
            FlavorData::Copy {
                image: flows_mem::CopyStack::new(),
            },
        );
        // One copy: straight from the thread's memory into a pooled
        // message buffer (shared by refcount all the way to the wire).
        let mut buf = inner
            .shared
            .payload_pool(inner.pe)
            .buf_with_capacity(4 * 1024);
        let out = buf.vec_mut();
        match data {
            FlavorData::Iso { slab } => {
                #[cfg(feature = "sanitize")]
                let (slot_base, slot_len) = (slab.slot().base(), slab.slot().len());
                slab.pack_into(sp, out)?;
                #[cfg(feature = "sanitize")]
                assert_slot_vacated(slot_base, slot_len);
            }
            FlavorData::Copy { image } => {
                out.extend_from_slice(image.saved());
            }
            FlavorData::Alias { binding } => {
                if sp <= binding.floor || sp > binding.top {
                    return Err(SysError::logic(
                        "pack",
                        format!("{tid}: sp {sp:#x} outside the thread's alias window"),
                    ));
                }
                // Only the live suffix travels; the rest of the frame is
                // zero by construction (frames recycle hole-punched). The
                // window identity rides inside sp — the destination
                // derives it back with wid_for_sp.
                let floor = sp.saturating_sub(STACK_RED_ZONE).max(binding.floor);
                let mut pool = inner.shared.alias().lock();
                pool.read_bound_tail_into(&binding, binding.top - floor, out)?;
                // Zero syscalls without sanitize: frame and mapping stay
                // parked in-transit for the adopting PE. Under sanitize
                // the frame is punched and the window unmapped so stale
                // source-side touches fault.
                pool.begin_transit(&binding)?;
                #[cfg(feature = "sanitize")]
                {
                    drop(pool);
                    assert_slot_vacated(binding.floor, binding.top - binding.floor);
                }
            }
            FlavorData::Standard { .. } => unreachable!("checked migratable"),
            // Pack validates `started`, and a started isomalloc thread
            // always owns a materialized slab.
            FlavorData::IsoLazy { .. } => unreachable!("unstarted threads are not packable"),
        }
        let payload = buf.freeze();
        inner.stats.migrations_out += 1;
        // The accumulated load travels with the thread so the destination
        // PE's tracker (and its LB epoch) continues where this one left off.
        let load_ns = inner.tracker.take(tid.0);
        flows_trace::emit(
            flows_trace::EventKind::MigPack,
            tid.0,
            payload.len() as u64,
            flavor_tag(flavor) as u64,
        );
        Ok(PackedThread {
            head: Head {
                id: tid,
                swap_kind: kind_tag(tcb.ctx.kind()),
                flavor: flavor_tag(flavor),
                state: matches!(tcb.state, ThreadState::Ready) as u8,
                sp: sp as u64,
                load_ns,
                priority: tcb.priority,
                globals: tcb.globals.take(),
                payload_len: payload.len() as u64,
            },
            payload,
        })
    }

    /// Destroy a thread without running it to completion, reclaiming its
    /// stack resources. This is the rollback primitive of online recovery:
    /// threads whose state advanced past the last committed checkpoint are
    /// discarded and their committed images re-instated via
    /// [`Scheduler::unpack_thread`]. Works on every flavor (unlike packing)
    /// and on threads that never started; only the currently running
    /// thread cannot be discarded.
    pub fn discard_thread(&self, tid: ThreadId) -> SysResult<()> {
        // SAFETY: single-OS-thread access between context switches.
        let inner = unsafe { &mut *self.inner_ptr() };
        if inner.current == Some(tid) {
            return Err(SysError::logic("discard", format!("{tid} is running")));
        }
        let mut tcb = inner
            .threads
            .remove(&tid)
            .ok_or_else(|| SysError::logic("discard", format!("{tid} is not here")))?;
        inner.runq.remove(tid);
        let _ = inner.tracker.take(tid.0);
        let data = std::mem::replace(
            &mut tcb.flavor,
            FlavorData::Copy {
                image: flows_mem::CopyStack::new(),
            },
        );
        // Alias windows live in the shared pool and must be returned
        // through it (release punches the frame and unmaps the window
        // immediately — rollback must not leave stale pairs warm); every
        // other flavor reclaims on drop (Iso slabs free their slot,
        // Standard stacks are plain memory).
        if let FlavorData::Alias { binding } = data {
            inner.shared.alias().lock().release(&binding)?;
        }
        flows_trace::emit(flows_trace::EventKind::ThreadExit, tid.0, 1, 0);
        Ok(())
    }

    /// Discard every thread on this scheduler (except a currently running
    /// one, which cannot be), returning how many were reclaimed. The
    /// crash simulation uses it to model a failed node's memory vanishing:
    /// isomalloc slots and alias frames go back to the shared pools, so
    /// the threads' committed checkpoint images can later be re-instated
    /// at the same addresses on surviving PEs.
    pub fn discard_all(&self) -> usize {
        let tids: Vec<ThreadId> = {
            // SAFETY: single-OS-thread access between context switches.
            let inner = unsafe { &*self.inner_ptr() };
            inner.threads.keys().copied().collect()
        };
        let mut reclaimed = 0;
        for tid in tids {
            if self.discard_thread(tid).is_ok() {
                reclaimed += 1;
            }
        }
        reclaimed
    }

    /// Reinstate a migrated thread on this PE. Ready threads join the run
    /// queue; suspended threads wait for [`Scheduler::awaken_tid`].
    pub fn unpack_thread(&self, packed: PackedThread) -> SysResult<ThreadId> {
        // SAFETY: single-OS-thread access between context switches.
        let inner = unsafe { &mut *self.inner_ptr() };
        let PackedThread { head: w, payload } = packed;
        if payload.len() != w.payload_len as usize {
            return Err(SysError::logic(
                "unpack",
                "payload length disagrees with head".into(),
            ));
        }
        if inner.threads.contains_key(&w.id) {
            return Err(SysError::logic(
                "unpack",
                format!("{} already lives on this PE", w.id),
            ));
        }
        let kind = tag_kind(w.swap_kind)?;
        if kind != inner.cfg.swap_kind {
            return Err(SysError::logic(
                "unpack",
                format!(
                    "thread uses {} swap but this scheduler uses {}",
                    kind.name(),
                    inner.cfg.swap_kind.name()
                ),
            ));
        }
        let (flavor, sp) = match w.flavor {
            0 => {
                let image = flows_mem::CopyStack::from_saved(payload.to_vec());
                (FlavorData::Copy { image }, w.sp as usize)
            }
            1 => {
                // The slab cache may hold a parked slab that still owns
                // this image's slot; unpack_with evicts it before adopting
                // (the double-ownership hazard).
                let mut cache = inner.shared.slab_cache().lock();
                let (slab, sp) = flows_mem::ThreadSlab::unpack_with(
                    inner.shared.region(),
                    payload.as_slice(),
                    Some(&mut cache),
                )?;
                drop(cache);
                if sp != w.sp as usize {
                    return Err(SysError::logic("unpack", "sp mismatch in image".into()));
                }
                (FlavorData::Iso { slab: Box::new(slab) }, sp)
            }
            2 => {
                let sp = w.sp as usize;
                let mut pool = inner.shared.alias().lock();
                // The saved sp names the thread's window machine-wide.
                let wid = pool.wid_for_sp(sp)?;
                let floor_w = pool.window_floor(wid);
                let top = pool.window_top(wid);
                let floor = sp.saturating_sub(STACK_RED_ZONE).max(floor_w);
                if payload.len() != top - floor {
                    return Err(SysError::logic(
                        "unpack",
                        format!(
                            "alias image is {} bytes, sp implies {}",
                            payload.len(),
                            top - floor
                        ),
                    ));
                }
                // Re-binds the window whatever its state: in-transit pairs
                // reuse their mapping (one pwrite total), reclaimed or
                // rolled-back windows get a zeroed frame first.
                let binding = pool.adopt(wid, payload.as_slice())?;
                (FlavorData::Alias { binding }, sp)
            }
            _ => return Err(SysError::logic("unpack", "bad flavor tag".into())),
        };
        let mut ctx = Context::new(kind);
        // SAFETY: sp was saved by a suspend through a same-kind context and
        // its stack bytes were just reinstated at the same address.
        unsafe { ctx.set_saved_sp(sp) };
        let ready = w.state == 1;
        let tcb = Box::new(Tcb {
            id: w.id,
            ctx,
            state: if ready {
                ThreadState::Ready
            } else {
                ThreadState::Suspended
            },
            flavor,
            entry_raw: None,
            started: true,
            globals: w.globals,
            panicked: false,
            priority: w.priority,
        });
        inner.threads.insert(w.id, tcb);
        if ready {
            inner.runq.push(w.id, w.priority);
        }
        inner.stats.migrations_in += 1;
        inner.tracker.set(w.id.0, w.load_ns);
        flows_trace::emit(
            flows_trace::EventKind::MigUnpack,
            w.id.0,
            w.payload_len,
            w.flavor as u64,
        );
        Ok(w.id)
    }
}

/// Convenience for in-process machines: pack on `from`, unpack on `to`.
pub fn migrate(from: &Scheduler, to: &Scheduler, tid: ThreadId) -> SysResult<()> {
    let packed = from.pack_thread(tid)?;
    to.unpack_thread(packed)?;
    Ok(())
}
