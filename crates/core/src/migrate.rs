//! Thread migration: packing a suspended thread into bytes and
//! reinstating it on another PE (paper §3.4).
//!
//! What travels: the live stack bytes, the isomalloc heap (for
//! [`StackFlavor::Isomalloc`]), the privatized globals block, the saved
//! stack pointer and metadata. What does *not* travel: nothing needs to —
//! all three migratable flavors guarantee the stack executes at the same
//! virtual address on the destination, so every pointer in the image stays
//! valid (the paper's central trick).

use crate::scheduler::Scheduler;
use crate::tcb::{FlavorData, StackFlavor, Tcb, ThreadId, ThreadState};
use flows_arch::{Context, SwapKind};
use flows_pup::{pup_fields, Pup};
use flows_sys::error::{SysError, SysResult};

/// A thread serialized for migration (opaque PUP image).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PackedThread {
    wire: Wire,
}
impl Pup for PackedThread {
    fn pup(&mut self, p: &mut flows_pup::Puper) {
        self.wire.pup(p);
    }
}

#[derive(Debug, Clone, Default, PartialEq)]
struct Wire {
    id: ThreadId,
    swap_kind: u8,
    flavor: u8,
    state: u8,
    sp: u64,
    load_ns: u64,
    priority: i32,
    globals: Option<Vec<u8>>,
    payload: Vec<u8>,
}
pup_fields!(Wire {
    id,
    swap_kind,
    flavor,
    state,
    sp,
    load_ns,
    priority,
    globals,
    payload
});

fn kind_tag(k: SwapKind) -> u8 {
    match k {
        SwapKind::Minimal => 0,
        SwapKind::Full => 1,
        SwapKind::SignalMask => 2,
    }
}

fn tag_kind(t: u8) -> SysResult<SwapKind> {
    Ok(match t {
        0 => SwapKind::Minimal,
        1 => SwapKind::Full,
        2 => SwapKind::SignalMask,
        _ => return Err(SysError::logic("unpack", "bad swap kind tag".into())),
    })
}

fn flavor_tag(f: StackFlavor) -> u8 {
    match f {
        StackFlavor::StackCopy => 0,
        StackFlavor::Isomalloc => 1,
        StackFlavor::Alias => 2,
        StackFlavor::Standard => 3,
    }
}

impl PackedThread {
    /// The migrating thread's id.
    pub fn id(&self) -> ThreadId {
        self.wire.id
    }

    /// Bytes in the image payload (stack + heap data).
    pub fn payload_len(&self) -> usize {
        self.wire.payload.len()
    }

    /// Measured CPU load (ns) of the thread's current epoch, captured at
    /// pack time. Lets a restart path feed real loads to a load balancer
    /// when placing restored threads.
    pub fn load_ns(&self) -> u64 {
        self.wire.load_ns
    }

    /// Serialize to raw bytes (for shipping through a message layer).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut me = self.clone();
        flows_pup::to_bytes(&mut me)
    }

    /// Deserialize from raw bytes.
    pub fn from_bytes(bytes: &[u8]) -> SysResult<PackedThread> {
        flows_pup::from_bytes(bytes)
            .map_err(|e| SysError::logic("packed_thread", format!("corrupt: {e}")))
    }
}

impl Scheduler {
    /// Pack `tid` for migration away from this PE.
    ///
    /// The thread must be started (its entry closure has begun executing),
    /// not currently running, and of a migratable flavor. On success the
    /// thread no longer exists on this PE.
    pub fn pack_thread(&self, tid: ThreadId) -> SysResult<PackedThread> {
        // SAFETY: single-OS-thread access between context switches.
        let inner = unsafe { &mut *self.inner_ptr() };
        if inner.current == Some(tid) {
            return Err(SysError::logic("pack", format!("{tid} is running")));
        }
        {
            let tcb = inner
                .threads
                .get(&tid)
                .ok_or_else(|| SysError::logic("pack", format!("{tid} is not here")))?;
            if !tcb.started {
                return Err(SysError::logic(
                    "pack",
                    format!("{tid} has not started: its entry closure is not serializable"),
                ));
            }
            if !tcb.flavor.flavor().migratable() {
                return Err(SysError::logic(
                    "pack",
                    format!("{tid} uses a {} stack, which cannot migrate", tcb.flavor.flavor().name()),
                ));
            }
            if !matches!(tcb.state, ThreadState::Ready | ThreadState::Suspended) {
                return Err(SysError::logic(
                    "pack",
                    format!("{tid} is {:?}", tcb.state),
                ));
            }
        }
        let mut tcb = inner.threads.remove(&tid).expect("checked above");
        inner.runq.remove(tid);
        let sp = tcb.ctx.saved_sp();
        let flavor = tcb.flavor.flavor();
        // Replace the flavor data with an empty placeholder so we can move
        // the real resources out of the box.
        let data = std::mem::replace(
            &mut tcb.flavor,
            FlavorData::Copy {
                image: flows_mem::CopyStack::new(),
            },
        );
        let payload = match data {
            FlavorData::Iso { slab } => slab.pack(sp)?,
            FlavorData::Copy { mut image } => flows_pup::to_bytes(&mut image),
            FlavorData::Alias { frame } => {
                let mut pool = inner.shared.alias().lock();
                if pool.active() == Some(frame) {
                    // The scheduler leaves the last-run frame mapped; undo
                    // that before taking the frame away.
                    pool.deactivate()?;
                }
                let bytes = pool.read_frame(frame)?;
                pool.free_frame(frame)?;
                bytes
            }
            FlavorData::Standard { .. } => unreachable!("checked migratable"),
        };
        inner.stats.migrations_out += 1;
        Ok(PackedThread {
            wire: Wire {
                id: tid,
                swap_kind: kind_tag(tcb.ctx.kind()),
                flavor: flavor_tag(flavor),
                state: matches!(tcb.state, ThreadState::Ready) as u8,
                sp: sp as u64,
                load_ns: tcb.load_ns,
                priority: tcb.priority,
                globals: tcb.globals.take(),
                payload,
            },
        })
    }

    /// Reinstate a migrated thread on this PE. Ready threads join the run
    /// queue; suspended threads wait for [`Scheduler::awaken_tid`].
    pub fn unpack_thread(&self, packed: PackedThread) -> SysResult<ThreadId> {
        // SAFETY: single-OS-thread access between context switches.
        let inner = unsafe { &mut *self.inner_ptr() };
        let w = packed.wire;
        if inner.threads.contains_key(&w.id) {
            return Err(SysError::logic(
                "unpack",
                format!("{} already lives on this PE", w.id),
            ));
        }
        let kind = tag_kind(w.swap_kind)?;
        if kind != inner.cfg.swap_kind {
            return Err(SysError::logic(
                "unpack",
                format!(
                    "thread uses {} swap but this scheduler uses {}",
                    kind.name(),
                    inner.cfg.swap_kind.name()
                ),
            ));
        }
        let (flavor, sp) = match w.flavor {
            0 => {
                let image: flows_mem::CopyStack = flows_pup::from_bytes(&w.payload)
                    .map_err(|e| SysError::logic("unpack", format!("copy image: {e}")))?;
                (FlavorData::Copy { image }, w.sp as usize)
            }
            1 => {
                let (slab, sp) =
                    flows_mem::ThreadSlab::unpack(inner.shared.region(), &w.payload)?;
                if sp != w.sp as usize {
                    return Err(SysError::logic("unpack", "sp mismatch in image".into()));
                }
                (FlavorData::Iso { slab }, sp)
            }
            2 => {
                let mut pool = inner.shared.alias().lock();
                let frame = pool.alloc_frame()?;
                pool.write_frame(frame, &w.payload)?;
                (FlavorData::Alias { frame }, w.sp as usize)
            }
            _ => return Err(SysError::logic("unpack", "bad flavor tag".into())),
        };
        let mut ctx = Context::new(kind);
        // SAFETY: sp was saved by a suspend through a same-kind context and
        // its stack bytes were just reinstated at the same address.
        unsafe { ctx.set_saved_sp(sp) };
        let ready = w.state == 1;
        let tcb = Box::new(Tcb {
            id: w.id,
            ctx,
            state: if ready {
                ThreadState::Ready
            } else {
                ThreadState::Suspended
            },
            flavor,
            entry_raw: None,
            started: true,
            globals: w.globals,
            load_ns: w.load_ns,
            panicked: false,
            priority: w.priority,
        });
        inner.threads.insert(w.id, tcb);
        if ready {
            inner.runq.push(w.id, w.priority);
        }
        inner.stats.migrations_in += 1;
        Ok(w.id)
    }
}

/// Convenience for in-process machines: pack on `from`, unpack on `to`.
pub fn migrate(from: &Scheduler, to: &Scheduler, tid: ThreadId) -> SysResult<()> {
    let packed = from.pack_thread(tid)?;
    to.unpack_thread(packed)?;
    Ok(())
}
