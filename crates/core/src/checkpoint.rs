//! Checkpoint/restart and PE evacuation — two applications the paper
//! derives directly from migration (§3): *"checkpointing is simply
//! migration to disk or the local memory of a remote processor"*
//! (refs [12], [42]), and moving all work off a processor to vacate a
//! node expected to fail or be shut down (refs [17], [34]).
//!
//! A [`Checkpoint`] is the packed images of every migratable thread of a
//! scheduler. It serializes with PUP, so it can be written to disk and
//! read back. Restoring requires the same process/isomalloc region (the
//! slots' virtual addresses must still be reserved) — on a real machine
//! this is the "restart on the same cluster layout" requirement the
//! Charm++ checkpoint papers describe.

use crate::migrate::PackedThread;
use crate::scheduler::Scheduler;
use crate::tcb::{ThreadId, ThreadState};
use flows_pup::pup_fields;
use flows_sys::error::{SysError, SysResult};

/// Frame constants for serialized checkpoints: `b"FCKP"`, a format
/// version, the payload byte length and an FNV-1a checksum.
const CKPT_MAGIC: [u8; 4] = *b"FCKP";
const CKPT_VERSION: u32 = 1;

/// Byte length of the self-describing frame header written by
/// [`frame_payload`].
pub const FRAME_HEADER_LEN: usize = 4 + 4 + 8 + 8;

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Wrap an opaque payload in the checkpoint frame: magic, format version,
/// payload length and an FNV-1a checksum. Shared by [`Checkpoint`]
/// serialization and the fault-tolerance layers above, which ship
/// checkpoint images over the wire to buddy PEs — a replica is validated
/// with exactly the same frame logic as an on-disk image.
pub fn frame_payload(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&CKPT_MAGIC);
    out.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&fnv1a(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Validate a frame written by [`frame_payload`] and return the payload.
/// Rejects truncation, foreign bytes, version skew, length mismatch and
/// bit flips with a precise error — a corrupt replica must be *detected*,
/// never misparsed.
pub fn unframe_payload(bytes: &[u8]) -> SysResult<&[u8]> {
    let err = |what: String| SysError::logic("checkpoint", what);
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(err(format!(
            "truncated header: {} bytes, need {FRAME_HEADER_LEN}",
            bytes.len()
        )));
    }
    if bytes[..4] != CKPT_MAGIC {
        return Err(err(format!(
            "bad magic {:02x?} (not a checkpoint image)",
            &bytes[..4]
        )));
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != CKPT_VERSION {
        return Err(err(format!(
            "unsupported checkpoint version {version} (this build reads {CKPT_VERSION})"
        )));
    }
    let len = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes")) as usize;
    let sum = u64::from_le_bytes(bytes[16..24].try_into().expect("8 bytes"));
    let payload = &bytes[FRAME_HEADER_LEN..];
    if payload.len() != len {
        return Err(err(format!(
            "payload length mismatch: header says {len}, got {}",
            payload.len()
        )));
    }
    if fnv1a(payload) != sum {
        return Err(err("checksum mismatch: image is corrupt".into()));
    }
    Ok(payload)
}

/// A scheduler's worth of suspended work, as bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// Source PE (informational).
    pub pe: u64,
    threads: Vec<PackedThread>,
}
pup_fields!(Checkpoint { pe, threads });

impl Checkpoint {
    /// Number of packed threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the checkpoint holds no threads.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Ids of the packed threads.
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        self.threads.iter().map(|t| t.id()).collect()
    }

    /// Serialize with a self-describing frame (the "to disk" half of
    /// migration-to-disk): magic, format version, payload length and a
    /// checksum, so a truncated or bit-flipped image is rejected with a
    /// precise error instead of being misparsed into garbage threads.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut me = self.clone();
        frame_payload(&flows_pup::to_bytes(&mut me))
    }

    /// Deserialize, verifying the frame written by [`Checkpoint::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> SysResult<Checkpoint> {
        let payload = unframe_payload(bytes)?;
        flows_pup::from_bytes(payload)
            .map_err(|e| SysError::logic("checkpoint", format!("corrupt payload: {e}")))
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> SysResult<()> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| SysError::logic("checkpoint_save", e.to_string()))
    }

    /// Read from a file.
    pub fn load(path: &std::path::Path) -> SysResult<Checkpoint> {
        let bytes = std::fs::read(path)
            .map_err(|e| SysError::logic("checkpoint_load", e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl Scheduler {
    /// Pack **every** thread of this scheduler into a checkpoint, leaving
    /// the scheduler empty (the threads now live in the image — exactly a
    /// migration whose destination is a byte buffer).
    ///
    /// Fails without side effects if any live thread cannot be packed
    /// (running, unstarted, or of the non-migratable Standard flavor);
    /// checkpointing half a computation would be worse than failing.
    pub fn checkpoint(&self) -> SysResult<Checkpoint> {
        // SAFETY: single-OS-thread access between context switches.
        let ids: Vec<ThreadId> = unsafe {
            let inner = &*self.inner_ptr();
            // Pre-validate so failure leaves everything in place.
            for t in inner.threads.values() {
                if !t.started {
                    return Err(SysError::logic(
                        "checkpoint",
                        format!("{} has not started", t.id),
                    ));
                }
                if !t.flavor.flavor().migratable() {
                    return Err(SysError::logic(
                        "checkpoint",
                        format!("{} uses a non-migratable {} stack", t.id, t.flavor.flavor().name()),
                    ));
                }
                if !matches!(t.state, ThreadState::Ready | ThreadState::Suspended) {
                    return Err(SysError::logic(
                        "checkpoint",
                        format!("{} is {:?}", t.id, t.state),
                    ));
                }
            }
            inner.threads.keys().copied().collect()
        };
        let mut threads = Vec::with_capacity(ids.len());
        for tid in ids {
            threads.push(self.pack_thread(tid)?);
        }
        Ok(Checkpoint {
            pe: self.pe() as u64,
            threads,
        })
    }

    /// Reinstate every thread of a checkpoint on this scheduler (the
    /// restart half, or the arrival half of evacuation). Ready threads
    /// rejoin the run queue; suspended ones await their wake-ups.
    pub fn restore(&self, ckpt: Checkpoint) -> SysResult<Vec<ThreadId>> {
        let mut ids = Vec::with_capacity(ckpt.threads.len());
        for packed in ckpt.threads {
            ids.push(self.unpack_thread(packed)?);
        }
        Ok(ids)
    }
}

/// Vacate `from`: move every thread it holds onto `to` (paper §3 —
/// "migration can allow all the work to be moved off a processor ... to
/// vacate a node that is expected to fail").
pub fn evacuate(from: &Scheduler, to: &Scheduler) -> SysResult<Vec<ThreadId>> {
    let ckpt = from.checkpoint()?;
    to.restore(ckpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{suspend, SchedConfig, SharedPools, StackFlavor};
    use std::cell::Cell;
    use std::rc::Rc;

    fn two_phase(result: Rc<Cell<u64>>, x: u64) -> impl FnOnce() + 'static {
        move || {
            let partial: u64 = (0..x).map(|i| i * i).sum();
            suspend(); // ---- checkpoint happens here ----
            result.set(result.get() + partial + x);
        }
    }

    #[test]
    fn checkpoint_to_disk_and_restart() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools.clone(), SchedConfig::default());
        let result = Rc::new(Cell::new(0u64));
        let mut tids = Vec::new();
        for x in [10u64, 20, 30] {
            tids.push(
                pe0.spawn(StackFlavor::Isomalloc, two_phase(result.clone(), x))
                    .unwrap(),
            );
        }
        pe0.run(); // phase 1 everywhere, all suspended
        let ckpt = pe0.checkpoint().unwrap();
        assert_eq!(ckpt.len(), 3);
        assert_eq!(pe0.thread_count(), 0, "threads now live in the image");

        // Round-trip through a real file: migration to disk.
        let path = std::env::temp_dir().join(format!("flows-ckpt-{}.bin", std::process::id()));
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 3);

        // "Restart": a fresh scheduler adopts the threads and finishes.
        let pe1 = Scheduler::new(1, pools, SchedConfig::default());
        let ids = pe1.restore(loaded).unwrap();
        assert_eq!(ids.len(), 3);
        for tid in tids {
            pe1.awaken_tid(tid).unwrap();
        }
        pe1.run();
        let expect: u64 = [10u64, 20, 30]
            .iter()
            .map(|&x| (0..x).map(|i| i * i).sum::<u64>() + x)
            .sum();
        assert_eq!(result.get(), expect);
    }

    #[test]
    fn checkpoint_is_atomic_on_failure() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools, SchedConfig::default());
        let r = Rc::new(Cell::new(0u64));
        pe0.spawn(StackFlavor::Isomalloc, two_phase(r.clone(), 5))
            .unwrap();
        // A Standard thread poisons the checkpoint...
        let t_std = pe0
            .spawn(StackFlavor::Standard, two_phase(r.clone(), 7))
            .unwrap();
        pe0.run();
        let err = pe0.checkpoint().unwrap_err();
        assert!(err.to_string().contains("non-migratable"));
        // ...but nothing was lost: both threads still here and resumable.
        assert_eq!(pe0.thread_count(), 2);
        pe0.awaken_tid(t_std).unwrap();
        pe0.run();
        assert_eq!(r.get(), (0..7u64).map(|i| i * i).sum::<u64>() + 7);
    }

    #[test]
    fn evacuation_moves_everything() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools.clone(), SchedConfig::default());
        let pe1 = Scheduler::new(1, pools, SchedConfig::default());
        let result = Rc::new(Cell::new(0u64));
        let mut tids = Vec::new();
        for x in 1..=5u64 {
            for flavor in [StackFlavor::Isomalloc, StackFlavor::StackCopy, StackFlavor::Alias] {
                tids.push(
                    pe0.spawn(flavor, two_phase(result.clone(), x)).unwrap(),
                );
            }
        }
        pe0.run();
        let moved = evacuate(&pe0, &pe1).unwrap();
        assert_eq!(moved.len(), 15);
        assert_eq!(pe0.thread_count(), 0, "PE0 is vacated");
        for tid in tids {
            pe1.awaken_tid(tid).unwrap();
        }
        pe1.run();
        let expect: u64 = (1..=5u64)
            .map(|x| 3 * ((0..x).map(|i| i * i).sum::<u64>() + x))
            .sum();
        assert_eq!(result.get(), expect);
    }

    #[test]
    fn corrupt_checkpoint_files_are_rejected() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools, SchedConfig::default());
        let r = Rc::new(Cell::new(0u64));
        pe0.spawn(StackFlavor::Isomalloc, two_phase(r, 3)).unwrap();
        pe0.run();
        let bytes = pe0.checkpoint().unwrap().to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(!Checkpoint::from_bytes(&[]).is_ok_and(|c| c.is_empty()));
        let ok = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ok.len(), 1);
    }

    /// Rollback primitive: threads of every flavor — started or not — can
    /// be discarded in place, and their stack resources come back to the
    /// pools (re-spawning after a mass discard succeeds).
    #[test]
    fn discard_thread_reclaims_every_flavor() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools, SchedConfig::default());
        let r = Rc::new(Cell::new(0u64));
        let flavors = [
            StackFlavor::Standard,
            StackFlavor::Isomalloc,
            StackFlavor::StackCopy,
            StackFlavor::Alias,
        ];
        let mut tids = Vec::new();
        for f in flavors {
            tids.push(pe0.spawn(f, two_phase(r.clone(), 9)).unwrap());
        }
        pe0.run(); // all reach the suspend point (started, stacks live)
        for f in flavors {
            // Unstarted spawns are discardable too (their entry closure
            // must be reclaimed without ever running).
            tids.push(pe0.spawn(f, two_phase(r.clone(), 1)).unwrap());
        }
        assert_eq!(pe0.thread_count(), 8);
        let before = r.get();
        for tid in tids {
            pe0.discard_thread(tid).unwrap();
        }
        assert_eq!(pe0.thread_count(), 0, "every thread discarded");
        pe0.run();
        assert_eq!(r.get(), before, "discarded work never completed");
        // Resources were returned: a full complement spawns again
        // (the alias window would run out of frames if leaked).
        for _ in 0..4 {
            for f in flavors {
                pe0.spawn(f, two_phase(r.clone(), 2)).unwrap();
            }
        }
        let err = pe0.discard_thread(crate::tcb::ThreadId(u64::MAX)).unwrap_err();
        assert!(err.to_string().contains("not here"));
    }

    mod frame_props {
        use super::super::{frame_payload, unframe_payload, FRAME_HEADER_LEN};
        use proptest::prelude::*;

        proptest! {
            /// Replicated checkpoint frames round-trip exactly: what the
            /// buddy stores is bit-identical to what the owner framed.
            #[test]
            fn frame_roundtrips_exactly(payload in proptest::collection::vec(any::<u8>(), 0..2048)) {
                let framed = frame_payload(&payload);
                prop_assert_eq!(framed.len(), FRAME_HEADER_LEN + payload.len());
                prop_assert_eq!(unframe_payload(&framed).unwrap(), &payload[..]);
            }

            /// Any single-byte corruption of a framed image — header or
            /// payload — is detected, never misparsed into a "valid"
            /// different payload, and never panics.
            #[test]
            fn frame_detects_any_single_byte_corruption(
                payload in proptest::collection::vec(any::<u8>(), 0..512),
                at in any::<usize>(),
                xor in 1u32..256,
            ) {
                let mut framed = frame_payload(&payload);
                let i = at % framed.len();
                framed[i] ^= xor as u8;
                prop_assert!(unframe_payload(&framed).is_err(), "flip at byte {} undetected", i);
            }

            /// Any truncation of a framed image is detected (the fallback
            /// to an older replica generation relies on this).
            #[test]
            fn frame_detects_any_truncation(
                payload in proptest::collection::vec(any::<u8>(), 1..512),
                keep in any::<usize>(),
            ) {
                let framed = frame_payload(&payload);
                let n = keep % framed.len(); // 0..len-1: strictly shorter
                prop_assert!(unframe_payload(&framed[..n]).is_err(), "truncation to {} undetected", n);
            }
        }
    }

    /// The frame catches every corruption class with a precise error:
    /// truncation, wrong magic, wrong version, short payload, bit flips.
    #[test]
    fn checkpoint_frame_rejects_each_corruption_mode() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools.clone(), SchedConfig::default());
        let r = Rc::new(Cell::new(0u64));
        let tid = pe0.spawn(StackFlavor::Isomalloc, two_phase(r.clone(), 4)).unwrap();
        pe0.run();
        let bytes = pe0.checkpoint().unwrap().to_bytes();

        let msg = |b: &[u8]| Checkpoint::from_bytes(b).unwrap_err().to_string();
        assert!(msg(&bytes[..10]).contains("truncated header"));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(msg(&bad).contains("bad magic"));
        let mut bad = bytes.clone();
        bad[4] = 0xFF; // version field
        assert!(msg(&bad).contains("unsupported checkpoint version"));
        assert!(msg(&bytes[..bytes.len() - 1]).contains("length mismatch"));
        let mut bad = bytes.clone();
        *bad.last_mut().unwrap() ^= 0x01; // flip one payload bit
        assert!(msg(&bad).contains("checksum mismatch"));

        // The pristine image still restores and the thread completes.
        let ckpt = Checkpoint::from_bytes(&bytes).unwrap();
        let pe1 = Scheduler::new(1, pools, SchedConfig::default());
        pe1.restore(ckpt).unwrap();
        pe1.awaken_tid(tid).unwrap();
        pe1.run();
        assert_eq!(r.get(), (0..4u64).map(|i| i * i).sum::<u64>() + 4);
    }
}
