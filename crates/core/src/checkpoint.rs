//! Checkpoint/restart and PE evacuation — two applications the paper
//! derives directly from migration (§3): *"checkpointing is simply
//! migration to disk or the local memory of a remote processor"*
//! (refs [12], [42]), and moving all work off a processor to vacate a
//! node expected to fail or be shut down (refs [17], [34]).
//!
//! A [`Checkpoint`] is the packed images of every migratable thread of a
//! scheduler. It serializes with PUP, so it can be written to disk and
//! read back. Restoring requires the same process/isomalloc region (the
//! slots' virtual addresses must still be reserved) — on a real machine
//! this is the "restart on the same cluster layout" requirement the
//! Charm++ checkpoint papers describe.

use crate::migrate::PackedThread;
use crate::scheduler::Scheduler;
use crate::tcb::{ThreadId, ThreadState};
use flows_pup::pup_fields;
use flows_sys::error::{SysError, SysResult};

/// A scheduler's worth of suspended work, as bytes.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Checkpoint {
    /// Source PE (informational).
    pub pe: u64,
    threads: Vec<PackedThread>,
}
pup_fields!(Checkpoint { pe, threads });

impl Checkpoint {
    /// Number of packed threads.
    pub fn len(&self) -> usize {
        self.threads.len()
    }

    /// Whether the checkpoint holds no threads.
    pub fn is_empty(&self) -> bool {
        self.threads.is_empty()
    }

    /// Ids of the packed threads.
    pub fn thread_ids(&self) -> Vec<ThreadId> {
        self.threads.iter().map(|t| t.id()).collect()
    }

    /// Serialize (the "to disk" half of migration-to-disk).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut me = self.clone();
        flows_pup::to_bytes(&mut me)
    }

    /// Deserialize.
    pub fn from_bytes(bytes: &[u8]) -> SysResult<Checkpoint> {
        flows_pup::from_bytes(bytes)
            .map_err(|e| SysError::logic("checkpoint", format!("corrupt: {e}")))
    }

    /// Write to a file.
    pub fn save(&self, path: &std::path::Path) -> SysResult<()> {
        std::fs::write(path, self.to_bytes())
            .map_err(|e| SysError::logic("checkpoint_save", e.to_string()))
    }

    /// Read from a file.
    pub fn load(path: &std::path::Path) -> SysResult<Checkpoint> {
        let bytes = std::fs::read(path)
            .map_err(|e| SysError::logic("checkpoint_load", e.to_string()))?;
        Self::from_bytes(&bytes)
    }
}

impl Scheduler {
    /// Pack **every** thread of this scheduler into a checkpoint, leaving
    /// the scheduler empty (the threads now live in the image — exactly a
    /// migration whose destination is a byte buffer).
    ///
    /// Fails without side effects if any live thread cannot be packed
    /// (running, unstarted, or of the non-migratable Standard flavor);
    /// checkpointing half a computation would be worse than failing.
    pub fn checkpoint(&self) -> SysResult<Checkpoint> {
        // SAFETY: single-OS-thread access between context switches.
        let ids: Vec<ThreadId> = unsafe {
            let inner = &*self.inner_ptr();
            // Pre-validate so failure leaves everything in place.
            for t in inner.threads.values() {
                if !t.started {
                    return Err(SysError::logic(
                        "checkpoint",
                        format!("{} has not started", t.id),
                    ));
                }
                if !t.flavor.flavor().migratable() {
                    return Err(SysError::logic(
                        "checkpoint",
                        format!("{} uses a non-migratable {} stack", t.id, t.flavor.flavor().name()),
                    ));
                }
                if !matches!(t.state, ThreadState::Ready | ThreadState::Suspended) {
                    return Err(SysError::logic(
                        "checkpoint",
                        format!("{} is {:?}", t.id, t.state),
                    ));
                }
            }
            inner.threads.keys().copied().collect()
        };
        let mut threads = Vec::with_capacity(ids.len());
        for tid in ids {
            threads.push(self.pack_thread(tid)?);
        }
        Ok(Checkpoint {
            pe: self.pe() as u64,
            threads,
        })
    }

    /// Reinstate every thread of a checkpoint on this scheduler (the
    /// restart half, or the arrival half of evacuation). Ready threads
    /// rejoin the run queue; suspended ones await their wake-ups.
    pub fn restore(&self, ckpt: Checkpoint) -> SysResult<Vec<ThreadId>> {
        let mut ids = Vec::with_capacity(ckpt.threads.len());
        for packed in ckpt.threads {
            ids.push(self.unpack_thread(packed)?);
        }
        Ok(ids)
    }
}

/// Vacate `from`: move every thread it holds onto `to` (paper §3 —
/// "migration can allow all the work to be moved off a processor ... to
/// vacate a node that is expected to fail").
pub fn evacuate(from: &Scheduler, to: &Scheduler) -> SysResult<Vec<ThreadId>> {
    let ckpt = from.checkpoint()?;
    to.restore(ckpt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{suspend, SchedConfig, SharedPools, StackFlavor};
    use std::cell::Cell;
    use std::rc::Rc;

    fn two_phase(result: Rc<Cell<u64>>, x: u64) -> impl FnOnce() + 'static {
        move || {
            let partial: u64 = (0..x).map(|i| i * i).sum();
            suspend(); // ---- checkpoint happens here ----
            result.set(result.get() + partial + x);
        }
    }

    #[test]
    fn checkpoint_to_disk_and_restart() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools.clone(), SchedConfig::default());
        let result = Rc::new(Cell::new(0u64));
        let mut tids = Vec::new();
        for x in [10u64, 20, 30] {
            tids.push(
                pe0.spawn(StackFlavor::Isomalloc, two_phase(result.clone(), x))
                    .unwrap(),
            );
        }
        pe0.run(); // phase 1 everywhere, all suspended
        let ckpt = pe0.checkpoint().unwrap();
        assert_eq!(ckpt.len(), 3);
        assert_eq!(pe0.thread_count(), 0, "threads now live in the image");

        // Round-trip through a real file: migration to disk.
        let path = std::env::temp_dir().join(format!("flows-ckpt-{}.bin", std::process::id()));
        ckpt.save(&path).unwrap();
        let loaded = Checkpoint::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.len(), 3);

        // "Restart": a fresh scheduler adopts the threads and finishes.
        let pe1 = Scheduler::new(1, pools, SchedConfig::default());
        let ids = pe1.restore(loaded).unwrap();
        assert_eq!(ids.len(), 3);
        for tid in tids {
            pe1.awaken_tid(tid).unwrap();
        }
        pe1.run();
        let expect: u64 = [10u64, 20, 30]
            .iter()
            .map(|&x| (0..x).map(|i| i * i).sum::<u64>() + x)
            .sum();
        assert_eq!(result.get(), expect);
    }

    #[test]
    fn checkpoint_is_atomic_on_failure() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools, SchedConfig::default());
        let r = Rc::new(Cell::new(0u64));
        pe0.spawn(StackFlavor::Isomalloc, two_phase(r.clone(), 5))
            .unwrap();
        // A Standard thread poisons the checkpoint...
        let t_std = pe0
            .spawn(StackFlavor::Standard, two_phase(r.clone(), 7))
            .unwrap();
        pe0.run();
        let err = pe0.checkpoint().unwrap_err();
        assert!(err.to_string().contains("non-migratable"));
        // ...but nothing was lost: both threads still here and resumable.
        assert_eq!(pe0.thread_count(), 2);
        pe0.awaken_tid(t_std).unwrap();
        pe0.run();
        assert_eq!(r.get(), (0..7u64).map(|i| i * i).sum::<u64>() + 7);
    }

    #[test]
    fn evacuation_moves_everything() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools.clone(), SchedConfig::default());
        let pe1 = Scheduler::new(1, pools, SchedConfig::default());
        let result = Rc::new(Cell::new(0u64));
        let mut tids = Vec::new();
        for x in 1..=5u64 {
            for flavor in [StackFlavor::Isomalloc, StackFlavor::StackCopy, StackFlavor::Alias] {
                tids.push(
                    pe0.spawn(flavor, two_phase(result.clone(), x)).unwrap(),
                );
            }
        }
        pe0.run();
        let moved = evacuate(&pe0, &pe1).unwrap();
        assert_eq!(moved.len(), 15);
        assert_eq!(pe0.thread_count(), 0, "PE0 is vacated");
        for tid in tids {
            pe1.awaken_tid(tid).unwrap();
        }
        pe1.run();
        let expect: u64 = (1..=5u64)
            .map(|x| 3 * ((0..x).map(|i| i * i).sum::<u64>() + x))
            .sum();
        assert_eq!(result.get(), expect);
    }

    #[test]
    fn corrupt_checkpoint_files_are_rejected() {
        let pools = SharedPools::new_for_tests();
        let pe0 = Scheduler::new(0, pools, SchedConfig::default());
        let r = Rc::new(Cell::new(0u64));
        pe0.spawn(StackFlavor::Isomalloc, two_phase(r, 3)).unwrap();
        pe0.run();
        let bytes = pe0.checkpoint().unwrap().to_bytes();
        assert!(Checkpoint::from_bytes(&bytes[..bytes.len() / 2]).is_err());
        assert!(Checkpoint::from_bytes(&[]).is_ok_and(|c| c.is_empty()) == false);
        let ok = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(ok.len(), 1);
    }
}
