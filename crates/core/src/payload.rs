//! Reference-counted message payloads and per-PE recycling buffer pools.
//!
//! The paper's argument (§2.4) is that message handling must cost less
//! than a microsecond; a runtime that memcpys every payload at every hop
//! (send → retransmit buffer → duplicate → rewrap) cannot get there. A
//! [`Payload`] is an `Arc`-backed byte buffer: cloning it — for a
//! retransmit table, a duplicate-injection fault, a multicast — bumps a
//! refcount instead of copying bytes, and [`Payload::slice`] carves
//! zero-copy views (a routed message's header vs. its body).
//!
//! Buffers are built through a [`PayloadBuf`] writer drawn from a
//! [`PayloadPool`] and *promoted without copy* by [`PayloadBuf::freeze`].
//! When the last `Payload` clone drops, the underlying `Vec` returns to
//! the pool it came from, so a steady-state message loop (ping-pong, ring,
//! stencil exchange) allocates nothing after warm-up — the pool's
//! [`PoolStats::allocs`] counter makes that claim testable.

use flows_pup::{Pup, Puper};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Retained buffers per pool before excess buffers are simply freed.
const DEFAULT_MAX_FREE: usize = 256;

/// Default capacity of a freshly allocated pool buffer.
const DEFAULT_MIN_CAP: usize = 1024;

/// A recycling pool of byte buffers. One lives on each PE (seeded from
/// `SharedPools`); the pool itself is `Send + Sync`, so a buffer
/// allocated on one PE and dropped on another finds its way home.
pub struct PayloadPool {
    free: Mutex<Vec<Vec<u8>>>,
    max_free: usize,
    min_cap: usize,
    allocs: AtomicU64,
    reuses: AtomicU64,
    returns: AtomicU64,
}

impl std::fmt::Debug for PayloadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PayloadPool")
            .field("free", &s.free_now)
            .field("allocs", &s.allocs)
            .field("reuses", &s.reuses)
            .finish()
    }
}

/// A snapshot of a pool's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Fresh heap allocations (pool misses).
    pub allocs: u64,
    /// Buffers handed out from the free list (pool hits).
    pub reuses: u64,
    /// Buffers returned to the free list on drop.
    pub returns: u64,
    /// Buffers currently parked in the free list.
    pub free_now: usize,
}

impl PayloadPool {
    /// A pool whose fresh buffers start at `min_cap` bytes of capacity
    /// and which retains at most `max_free` returned buffers.
    pub fn new(min_cap: usize, max_free: usize) -> Arc<PayloadPool> {
        Arc::new(PayloadPool {
            free: Mutex::new(Vec::new()),
            max_free,
            min_cap: min_cap.max(1),
            allocs: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            returns: AtomicU64::new(0),
        })
    }

    /// A pool with default sizing.
    pub fn with_defaults() -> Arc<PayloadPool> {
        PayloadPool::new(DEFAULT_MIN_CAP, DEFAULT_MAX_FREE)
    }

    /// Draw an empty writer from the pool (recycled when possible).
    pub fn buf(self: &Arc<Self>) -> PayloadBuf {
        self.buf_with_capacity(self.min_cap)
    }

    /// Draw an empty writer with at least `cap` bytes of capacity.
    pub fn buf_with_capacity(self: &Arc<Self>, cap: usize) -> PayloadBuf {
        let recycled = self.free.lock().pop();
        let mut data = match recycled {
            Some(v) => {
                self.reuses.fetch_add(1, Ordering::Relaxed);
                v
            }
            None => {
                self.allocs.fetch_add(1, Ordering::Relaxed);
                Vec::with_capacity(cap.max(self.min_cap))
            }
        };
        if data.capacity() < cap {
            data.reserve(cap - data.len());
        }
        PayloadBuf {
            data,
            pool: Some(self.clone()),
        }
    }

    /// Return a buffer to the free list (called from `Payload`/
    /// `PayloadBuf` drops; cleared before reuse).
    fn put(&self, mut v: Vec<u8>) {
        if v.capacity() == 0 {
            return;
        }
        v.clear();
        let mut free = self.free.lock();
        if free.len() < self.max_free {
            free.push(v);
            self.returns.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocs: self.allocs.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            returns: self.returns.load(Ordering::Relaxed),
            free_now: self.free.lock().len(),
        }
    }
}

/// The shared backing store of one or more [`Payload`] views. Returns its
/// bytes to the originating pool when the last view drops.
struct Backing {
    data: Vec<u8>,
    pool: Option<Arc<PayloadPool>>,
}

impl Drop for Backing {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

/// A mutable byte-buffer writer, drawn from a [`PayloadPool`] (or free-
/// standing), promoted into an immutable shared [`Payload`] by
/// [`PayloadBuf::freeze`] *without copying*. Dropping an unfrozen writer
/// returns its buffer to the pool.
pub struct PayloadBuf {
    data: Vec<u8>,
    pool: Option<Arc<PayloadPool>>,
}

impl PayloadBuf {
    /// A pool-less writer (plain heap buffer).
    pub fn new() -> PayloadBuf {
        PayloadBuf {
            data: Vec::new(),
            pool: None,
        }
    }

    /// The underlying `Vec`, for writers that want `std` APIs (and for
    /// `flows_pup::pack_into`, which packs any `Pup` into a `&mut Vec`).
    pub fn vec_mut(&mut self) -> &mut Vec<u8> {
        &mut self.data
    }

    /// Append bytes.
    pub fn extend_from_slice(&mut self, bytes: &[u8]) {
        self.data.extend_from_slice(bytes);
    }

    /// Append one byte.
    pub fn push(&mut self, b: u8) {
        self.data.push(b);
    }

    /// Grow (zero-filling) or shrink to `len` bytes.
    pub fn resize(&mut self, len: usize, fill: u8) {
        self.data.resize(len, fill);
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// No bytes written yet?
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Promote into an immutable shared [`Payload`]. Over [`INLINE_CAP`]
    /// bytes the buffer moves — no copy — and the pool handle travels
    /// along so the bytes are recycled when the payload fully drops. At
    /// or below the threshold the bytes are copied inline and the buffer
    /// goes straight back to its pool, skipping the Arc allocation and
    /// the later (possibly cross-PE) pool return.
    pub fn freeze(mut self) -> Payload {
        let len = self.data.len();
        if len <= INLINE_CAP {
            // Dropping `self` returns the buffer to its pool.
            return Payload::inline_from(&self.data);
        }
        Payload {
            repr: Repr::Shared {
                backing: Arc::new(Backing {
                    data: std::mem::take(&mut self.data),
                    pool: self.pool.take(),
                }),
                off: 0,
                len,
            },
        }
    }
}

impl Default for PayloadBuf {
    fn default() -> Self {
        PayloadBuf::new()
    }
}

impl Drop for PayloadBuf {
    fn drop(&mut self) {
        if let Some(pool) = self.pool.take() {
            pool.put(std::mem::take(&mut self.data));
        }
    }
}

impl std::ops::Deref for PayloadBuf {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for PayloadBuf {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Payloads at or below this many bytes are stored inline in the
/// [`Payload`] value itself — no `Arc`, no pool round-trip. Small control
/// messages (acks, decisions, fan-in contributions) are the common case,
/// and for them the refcount allocation plus the pool's mutex (contended
/// when many senders target one PE) costs more than copying the bytes.
pub const INLINE_CAP: usize = 64;

/// Foreign memory a [`Payload`] can alias without copying: the
/// shared-memory transport implements this for its ring slots, so a
/// message body delivered from another process is a view *into the
/// shared arena* — the slot is reclaimed (the implementor's `Drop`)
/// when the last payload view drops. The bytes must stay valid and
/// unchanged for the implementor's lifetime.
pub trait ExternRegion: Send + Sync {
    /// The region's bytes (stable for the region's whole lifetime).
    fn bytes(&self) -> &[u8];
}

enum Repr {
    /// Small payload, stored by value. Clone copies the array; drop is
    /// free.
    Inline { len: u8, bytes: [u8; INLINE_CAP] },
    /// Large payload, a view of a shared backing buffer.
    Shared {
        backing: Arc<Backing>,
        off: usize,
        len: usize,
    },
    /// A view of memory owned outside the payload system (a transport
    /// ring slot, a mapped segment). Dropping the last view releases
    /// the region.
    Extern {
        region: Arc<dyn ExternRegion>,
        off: usize,
        len: usize,
    },
}

/// An immutable, cheaply clonable byte buffer — the machine's message
/// payload type. Payloads over [`INLINE_CAP`] bytes are `Arc`-backed:
/// `Clone` bumps a refcount and [`Payload::slice`] makes zero-copy
/// subviews. At or below the threshold the bytes live inline in the value
/// (copied on clone/slice, but allocation- and lock-free).
/// `Deref<Target = [u8]>` gives slice access either way.
// flows-image: opaque — the hand-written Pup impl serializes the byte
// contents only; backings, pools and extern-region views are re-bound
// (inline or freshly Arc-backed) when the image is unpacked.
pub struct Payload {
    repr: Repr,
}

impl Payload {
    /// The empty payload (no allocation).
    pub fn empty() -> Payload {
        Payload::inline_from(&[])
    }

    fn inline_from(src: &[u8]) -> Payload {
        debug_assert!(src.len() <= INLINE_CAP);
        let mut bytes = [0u8; INLINE_CAP];
        bytes[..src.len()].copy_from_slice(src);
        Payload {
            repr: Repr::Inline {
                len: src.len() as u8,
                bytes,
            },
        }
    }

    /// Wrap an owned `Vec`. Over [`INLINE_CAP`] bytes: no copy; at or
    /// below: the bytes are copied inline and the `Vec` dropped.
    pub fn from_vec(v: Vec<u8>) -> Payload {
        if v.len() <= INLINE_CAP {
            return Payload::inline_from(&v);
        }
        let len = v.len();
        Payload {
            repr: Repr::Shared {
                backing: Arc::new(Backing {
                    data: v,
                    pool: None,
                }),
                off: 0,
                len,
            },
        }
    }

    /// Alias foreign memory (a transport ring slot, a mapped segment)
    /// without copying. The region is released — the implementor's
    /// `Drop` runs — when the last view drops. Regions at or below
    /// [`INLINE_CAP`] bytes are copied inline and released immediately:
    /// for a shm ring slot that frees the slot at decode time, which is
    /// the right trade for small control messages.
    pub fn from_extern(region: Arc<dyn ExternRegion>) -> Payload {
        let len = region.bytes().len();
        if len <= INLINE_CAP {
            return Payload::inline_from(region.bytes());
        }
        Payload {
            repr: Repr::Extern {
                region,
                off: 0,
                len,
            },
        }
    }

    /// Byte length of this view.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Shared { len, .. } => *len,
            Repr::Extern { len, .. } => *len,
        }
    }

    /// Is this view empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The bytes of this view.
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Inline { len, bytes } => &bytes[..*len as usize],
            Repr::Shared { backing, off, len } => &backing.data[*off..*off + *len],
            Repr::Extern { region, off, len } => &region.bytes()[*off..*off + *len],
        }
    }

    /// A subview of `range` (relative to this view): zero-copy on a
    /// shared payload, a byte copy on an inline one. Panics on an
    /// out-of-bounds range, like slice indexing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Payload {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of payload of {} bytes",
            self.len()
        );
        match &self.repr {
            Repr::Inline { .. } => Payload::inline_from(&self.as_slice()[range]),
            Repr::Shared { backing, off, .. } => Payload {
                repr: Repr::Shared {
                    backing: backing.clone(),
                    off: off + range.start,
                    len: range.end - range.start,
                },
            },
            Repr::Extern { region, off, .. } => Payload {
                repr: Repr::Extern {
                    region: region.clone(),
                    off: off + range.start,
                    len: range.end - range.start,
                },
            },
        }
    }

    /// A subview from `start` to the end (see [`Payload::slice`]).
    pub fn slice_from(&self, start: usize) -> Payload {
        self.slice(start..self.len())
    }

    /// Copy the bytes out into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Extract the bytes, avoiding the copy when this is the only view of
    /// a whole, pool-less buffer (pooled buffers are copied so the
    /// backing store still returns to its pool; inline payloads always
    /// copy — there is no heap buffer to steal).
    pub fn into_vec(self) -> Vec<u8> {
        if let Repr::Shared { backing, off, len } = self.repr {
            if off == 0 && len == backing.data.len() && backing.pool.is_none() {
                return match Arc::try_unwrap(backing) {
                    Ok(mut backing) => std::mem::take(&mut backing.data),
                    Err(backing) => backing.data.to_vec(),
                };
            }
            return backing.data[off..off + len].to_vec();
        }
        self.to_vec()
    }

    /// Do two payloads share the same backing buffer? (Aliasing probe for
    /// tests: `clone` and `slice` of payloads over [`INLINE_CAP`] bytes
    /// share; inline payloads never do.)
    pub fn same_backing(&self, other: &Payload) -> bool {
        match (&self.repr, &other.repr) {
            (Repr::Shared { backing: a, .. }, Repr::Shared { backing: b, .. }) => {
                Arc::ptr_eq(a, b)
            }
            (Repr::Extern { region: a, .. }, Repr::Extern { region: b, .. }) => {
                std::ptr::addr_eq(Arc::as_ptr(a), Arc::as_ptr(b))
            }
            _ => false,
        }
    }

    /// How many views share this backing buffer (1 for inline payloads).
    pub fn ref_count(&self) -> usize {
        match &self.repr {
            Repr::Inline { .. } => 1,
            Repr::Shared { backing, .. } => Arc::strong_count(backing),
            Repr::Extern { region, .. } => Arc::strong_count(region),
        }
    }
}

impl Clone for Payload {
    fn clone(&self) -> Payload {
        Payload {
            repr: match &self.repr {
                Repr::Inline { len, bytes } => Repr::Inline {
                    len: *len,
                    bytes: *bytes,
                },
                Repr::Shared { backing, off, len } => Repr::Shared {
                    backing: backing.clone(),
                    off: *off,
                    len: *len,
                },
                Repr::Extern { region, off, len } => Repr::Extern {
                    region: region.clone(),
                    off: *off,
                    len: *len,
                },
            },
        }
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::empty()
    }
}

impl std::ops::Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl std::fmt::Debug for Payload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Payload({} bytes", self.len())?;
        if matches!(self.repr, Repr::Inline { .. }) {
            write!(f, ", inline")?;
        } else if matches!(self.repr, Repr::Extern { .. }) {
            write!(f, ", extern")?;
        } else if self.ref_count() > 1 {
            write!(f, ", {} refs", self.ref_count())?;
        }
        write!(f, ")")
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::from_vec(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Payload {
        Payload::from_vec(v.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(v: [u8; N]) -> Payload {
        Payload::from_vec(v.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Payload {
        Payload::from_vec(v.to_vec())
    }
}

impl From<PayloadBuf> for Payload {
    fn from(b: PayloadBuf) -> Payload {
        b.freeze()
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Payload) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == &other[..]
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Payload {
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other
    }
}

/// PUP support so payloads embed in migration/checkpoint wire structs
/// (length-prefixed raw bytes, like `Vec<u8>` but bulk, not per-element).
impl Pup for Payload {
    fn pup(&mut self, p: &mut Puper) {
        let mut n = self.len() as u64;
        n.pup(p);
        if p.is_unpacking() {
            let n = n as usize;
            if n <= INLINE_CAP {
                // Small payloads unpack straight into the inline array.
                let mut bytes = [0u8; INLINE_CAP];
                p.raw(&mut bytes[..n]);
                *self = if p.has_error() {
                    Payload::empty()
                } else {
                    Payload::inline_from(&bytes[..n])
                };
                return;
            }
            // Guard against hostile length prefixes: grow in chunks so a
            // corrupt header hits Truncated before a giant allocation.
            let mut v: Vec<u8> = Vec::with_capacity(n.min(64 * 1024));
            while v.len() < n {
                if p.has_error() {
                    *self = Payload::empty();
                    return;
                }
                let start = v.len();
                let chunk = (n - start).min(64 * 1024);
                v.resize(start + chunk, 0);
                p.raw(&mut v[start..]);
            }
            if p.has_error() {
                *self = Payload::empty();
                return;
            }
            *self = Payload::from_vec(v);
        } else {
            // Sizing or packing: raw() only reads, but wants `&mut`; the
            // backing may be aliased by other views, so go through a copy
            // (payload pup rides migration/checkpoint paths, not the
            // per-message hot path).
            let mut tmp = self.to_vec();
            p.raw(&mut tmp);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_and_slice_share_backing() {
        // Over INLINE_CAP bytes: views alias one Arc-backed buffer.
        let v: Vec<u8> = (0..100).collect();
        let p: Payload = v.clone().into();
        let q = p.clone();
        assert!(p.same_backing(&q));
        assert_eq!(p, q);
        let tail = p.slice_from(2);
        assert!(tail.same_backing(&p));
        assert_eq!(tail, v[2..]);
        assert_eq!(tail.slice(1..2), [3u8]);
    }

    #[test]
    fn small_payloads_are_inline() {
        // At or below INLINE_CAP: no Arc, no sharing, still equal bytes.
        let p: Payload = vec![1u8, 2, 3, 4, 5].into();
        let q = p.clone();
        assert!(!p.same_backing(&q), "inline payloads never share");
        assert_eq!(p.ref_count(), 1);
        assert_eq!(p, q);
        assert_eq!(p.slice(1..4), [2u8, 3, 4]);
        assert_eq!(p.slice_from(3), [4u8, 5]);
        assert_eq!(p.to_vec(), vec![1, 2, 3, 4, 5]);
        assert_eq!(Payload::empty().len(), 0);

        // Freezing a small pooled buffer inlines the bytes and returns
        // the buffer to the pool immediately — the whole small-message
        // round trip does one pool draw and zero Arc allocations.
        let pool = PayloadPool::new(16, 8);
        let mut b = pool.buf();
        b.extend_from_slice(b"ack");
        let p = b.freeze();
        assert_eq!(p, b"ack".to_vec());
        assert_eq!(pool.stats().returns, 1, "buffer went home at freeze");
        assert_eq!(pool.stats().free_now, 1);

        // The boundary: INLINE_CAP bytes inline, INLINE_CAP + 1 share.
        let at: Payload = vec![7u8; INLINE_CAP].into();
        assert!(!at.same_backing(&at.clone()));
        let over: Payload = vec![7u8; INLINE_CAP + 1].into();
        assert!(over.same_backing(&over.clone()));
    }

    #[test]
    fn freeze_promotes_without_copy() {
        let pool = PayloadPool::new(64, 8);
        let mut buf = pool.buf();
        buf.extend_from_slice(&[9u8; 100]);
        let base = buf.as_ptr() as usize;
        let p = buf.freeze();
        assert_eq!(p.as_slice().as_ptr() as usize, base, "no copy on freeze");
        assert_eq!(p, vec![9u8; 100]);
    }

    #[test]
    fn pool_recycles_dropped_buffers() {
        let pool = PayloadPool::new(64, 8);
        let p = {
            let mut b = pool.buf();
            b.extend_from_slice(&[9; 100]);
            b.freeze()
        };
        let q = p.clone();
        drop(p);
        assert_eq!(pool.stats().returns, 0, "still referenced");
        drop(q);
        let s = pool.stats();
        assert_eq!(s.returns, 1);
        assert_eq!(s.free_now, 1);
        // Next draw reuses the same storage: no new allocation.
        let b2 = pool.buf();
        let s = pool.stats();
        assert_eq!(s.reuses, 1);
        assert_eq!(s.allocs, 1, "only the first draw allocated");
        assert!(b2.is_empty(), "recycled buffers come back cleared");
        assert!(b2.data.capacity() >= 100);
    }

    #[test]
    fn steady_state_loop_allocates_nothing() {
        let pool = PayloadPool::new(64, 8);
        // Warm-up: one buffer enters the pool.
        drop(pool.buf_with_capacity(256).freeze());
        let allocs_after_warmup = pool.stats().allocs;
        for i in 0..1000u32 {
            let mut b = pool.buf_with_capacity(256);
            b.extend_from_slice(&i.to_le_bytes());
            let p = b.freeze();
            let q = p.clone(); // a "retransmit table" reference
            assert_eq!(q.slice(0..4), i.to_le_bytes());
            drop(p);
            drop(q);
        }
        assert_eq!(
            pool.stats().allocs,
            allocs_after_warmup,
            "steady-state send loop must not allocate"
        );
        assert_eq!(pool.stats().reuses, 1000);
    }

    #[test]
    fn into_vec_avoids_copy_when_unique_and_unpooled() {
        let v = vec![7u8; 100];
        let base = v.as_ptr() as usize;
        let p = Payload::from_vec(v);
        let out = p.into_vec();
        assert_eq!(out.as_ptr() as usize, base);
        // Pooled: copies, and the buffer still returns to the pool.
        let pool = PayloadPool::new(64, 8);
        let mut b = pool.buf();
        b.extend_from_slice(&[1, 2, 3]);
        let out = b.freeze().into_vec();
        assert_eq!(out, vec![1, 2, 3]);
        assert_eq!(pool.stats().returns, 1, "pooled bytes went home");
    }

    #[test]
    fn cross_thread_drop_returns_to_origin_pool() {
        let pool = PayloadPool::new(64, 8);
        let mut b = pool.buf();
        b.extend_from_slice(&[5; 50]);
        let p = b.freeze();
        std::thread::spawn(move || {
            assert_eq!(p.len(), 50);
            drop(p);
        })
        .join()
        .unwrap();
        assert_eq!(pool.stats().returns, 1);
        assert_eq!(pool.stats().free_now, 1);
    }

    #[test]
    fn pup_round_trip_in_a_struct() {
        #[derive(Default)]
        struct Wire {
            tag: u32,
            body: Payload,
        }
        flows_pup::pup_fields!(Wire { tag, body });
        let mut w = Wire {
            tag: 9,
            body: vec![1u8, 2, 3].into(),
        };
        let bytes = flows_pup::to_bytes(&mut w);
        let r: Wire = flows_pup::from_bytes(&bytes).unwrap();
        assert_eq!(r.tag, 9);
        assert_eq!(r.body, [1u8, 2, 3]);
    }

    #[test]
    fn extern_region_aliases_without_copy_and_releases_on_drop() {
        use std::sync::atomic::AtomicBool;

        struct Region {
            bytes: Vec<u8>,
            released: Arc<AtomicBool>,
        }
        impl ExternRegion for Region {
            fn bytes(&self) -> &[u8] {
                &self.bytes
            }
        }
        impl Drop for Region {
            fn drop(&mut self) {
                self.released.store(true, Ordering::SeqCst);
            }
        }

        let released = Arc::new(AtomicBool::new(false));
        let bytes: Vec<u8> = (0..200u8).collect();
        let base = bytes.as_ptr() as usize;
        let region: Arc<dyn ExternRegion> = Arc::new(Region {
            bytes,
            released: released.clone(),
        });
        let p = Payload::from_extern(region);
        assert_eq!(p.len(), 200);
        assert_eq!(p.as_slice().as_ptr() as usize, base, "aliases, no copy");
        let tail = p.slice_from(100);
        assert!(tail.same_backing(&p), "subviews share the region");
        assert_eq!(tail.as_slice().as_ptr() as usize, base + 100);
        assert_eq!(tail[0], 100);
        let q = p.clone();
        assert_eq!(q.ref_count(), 3);
        drop(p);
        drop(q);
        assert!(!released.load(Ordering::SeqCst), "tail still holds it");
        drop(tail);
        assert!(released.load(Ordering::SeqCst), "last view frees the slot");

        // Small regions inline and release the slot immediately.
        let released = Arc::new(AtomicBool::new(false));
        let small: Arc<dyn ExternRegion> = Arc::new(Region {
            bytes: vec![7u8; 8],
            released: released.clone(),
        });
        let p = Payload::from_extern(small);
        assert!(released.load(Ordering::SeqCst), "inlined, slot freed");
        assert_eq!(p, vec![7u8; 8]);
    }

    #[test]
    fn retained_buffers_are_capped() {
        let pool = PayloadPool::new(16, 2);
        let bufs: Vec<Payload> = (0..5).map(|_| pool.buf().freeze()).collect();
        drop(bufs);
        assert!(pool.stats().free_now <= 2);
    }
}
