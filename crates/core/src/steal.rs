//! Intra-node work stealing: the machine-wide coordination mesh.
//!
//! A per-PE scheduler is `!Sync` by design — a thief cannot reach into a
//! victim's run queue from another OS thread. Stealing therefore runs as
//! a lightly-locked request/donate protocol over this shared mesh:
//!
//! 1. An idle thief reads the victims' *published* runnable counts
//!    (relaxed atomics, refreshed by each scheduler as it pumps), picks
//!    the richest victim, and sets its bit in that victim's request word
//!    (`StealAttempt` in the trace).
//! 2. The victim notices the request word at its next pump boundary —
//!    never mid-switch — pops a chunk from the **tail** of its richest
//!    run-queue lane (so FIFO-within-priority is preserved for everything
//!    it keeps), packs the threads through the ordinary migration path,
//!    and deposits them in the thief's inbox.
//! 3. The thief absorbs its inbox (`StealHit`), unpacking each thread
//!    locally; warm slot/window adoption makes that cheap (see
//!    `flows-mem`: alias pairs ride in-transit mapping-intact, isomalloc
//!    slots re-commit warm).
//!
//! The only locks are the per-inbox mutexes, held for a push or a drain;
//! victim selection and the request handshake are single atomic words.
//! Packed threads waiting in an inbox count as local work for the
//! quiescence detector (`in_flight`), so a machine cannot declare itself
//! idle while stolen threads are still in transit.

use crate::migrate::PackedThread;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Largest number of threads one donation moves. Chunked steals amortize
/// the request/absorb handshake without letting one hungry thief drain a
/// victim dry.
pub const MAX_STEAL_CHUNK: usize = 32;

/// A victim donates only while it keeps at least this many runnable
/// threads for itself (it must stay busy, or work ping-pongs).
pub const STEAL_KEEP_MIN: usize = 2;

/// The shared work-stealing state of one machine: published loads, the
/// per-victim request words, and the per-thief donation inboxes.
///
/// Request words are one `u64` bitmask per victim (bit `t` = PE `t` wants
/// work), which caps direct request addressing at 64 PEs — machines here
/// are far smaller; larger machines would shard the mask.
pub struct StealMesh {
    /// `loads[pe]` = that scheduler's last published runnable count.
    loads: Vec<AtomicUsize>,
    /// `requests[victim]` = bitmask of thief PEs awaiting a donation.
    requests: Vec<AtomicU64>,
    /// `inbox[thief]` = packed threads donated to that PE.
    inbox: Vec<Mutex<Vec<PackedThread>>>,
    /// Lock-free mirror of each inbox's length, for idle-path polling.
    inbox_len: Vec<AtomicUsize>,
}

impl std::fmt::Debug for StealMesh {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealMesh")
            .field("pes", &self.loads.len())
            .field("in_flight", &self.in_flight())
            .finish()
    }
}

impl StealMesh {
    /// An empty mesh for `num_pes` PEs.
    pub fn new(num_pes: usize) -> StealMesh {
        let n = num_pes.max(1);
        StealMesh {
            loads: (0..n).map(|_| AtomicUsize::new(0)).collect(),
            requests: (0..n).map(|_| AtomicU64::new(0)).collect(),
            inbox: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            inbox_len: (0..n).map(|_| AtomicUsize::new(0)).collect(),
        }
    }

    /// Machine size the mesh was built for.
    pub fn num_pes(&self) -> usize {
        self.loads.len()
    }

    /// Publish `pe`'s current runnable count (relaxed: staleness only
    /// makes a thief pick a slightly worse victim).
    #[inline]
    pub fn publish_load(&self, pe: usize, runnable: usize) {
        // flowslint::allow(atomic-protocol): advisory gossip — the count is
        // the only datum and it rides in the atomic itself; a stale read
        // just makes a thief pick a slightly worse victim, so Relaxed is
        // sufficient and keeps the pump's per-iteration publish free.
        self.loads[pe].store(runnable, Ordering::Relaxed); // flows-atomic: publishes steal-load
    }

    /// `pe`'s last published runnable count.
    pub fn load_of(&self, pe: usize) -> usize {
        self.loads[pe].load(Ordering::Relaxed)
    }

    /// The busiest PE other than `thief` whose published load clears the
    /// donation threshold, with its load. Ties go to the lowest PE index
    /// (deterministic, and cheap to reason about in tests).
    pub fn richest_victim(&self, thief: usize) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize)> = None;
        for (pe, load) in self.loads.iter().enumerate() {
            if pe == thief {
                continue;
            }
            // flowslint::allow(atomic-protocol): advisory read of the load
            // gossip (see `publish_load` — no data is published under it).
            let l = load.load(Ordering::Relaxed); // flows-atomic: consumes steal-load
            if l > STEAL_KEEP_MIN && best.is_none_or(|(_, bl)| l > bl) {
                best = Some((pe, l));
            }
        }
        best
    }

    /// Record that `thief` wants work from `victim`. Idempotent; returns
    /// whether the bit was newly set (first request since the victim last
    /// drained its word).
    pub fn request(&self, victim: usize, thief: usize) -> bool {
        let bit = 1u64 << (thief as u64 & 63);
        self.requests[victim].fetch_or(bit, Ordering::AcqRel) & bit == 0 // flows-atomic: publishes steal-request
    }

    /// Drain and return `victim`'s pending request mask (bit `t` = PE `t`).
    pub fn take_requests(&self, victim: usize) -> u64 {
        self.requests[victim].swap(0, Ordering::AcqRel) // flows-atomic: consumes steal-request
    }

    /// Does `victim` have requests pending? (Relaxed peek for the pump's
    /// per-iteration check.)
    #[inline]
    pub fn has_requests(&self, victim: usize) -> bool {
        // flowslint::allow(atomic-protocol): cheap per-pump peek; the
        // authoritative drain is `take_requests` (AcqRel swap), and a bit
        // missed by a stale peek is re-noticed on the next pump boundary.
        self.requests[victim].load(Ordering::Relaxed) != 0 // flows-atomic: consumes steal-request
    }

    /// Deposit donated threads into `thief`'s inbox. The length mirror is
    /// bumped *before* the threads land in the inbox: `in_flight` may
    /// transiently overcount (harmless — the quiescence detector just
    /// polls again), but it must never undercount, or the machine can
    /// declare itself idle while stolen threads exist only inside this
    /// call. `absorb` subtracts what it actually took, so a transient
    /// overcount converges as soon as the threads are in.
    pub fn donate(&self, thief: usize, packed: Vec<PackedThread>) {
        if packed.is_empty() {
            return;
        }
        let n = packed.len();
        self.inbox_len[thief].fetch_add(n, Ordering::Release); // flows-atomic: publishes steal-inbox
        self.inbox[thief].lock().extend(packed);
    }

    /// Drain `thief`'s inbox. The length mirror is decremented before the
    /// lock drops, so `in_flight` never undercounts while threads exist
    /// only in the returned vector *and* the caller still holds them —
    /// callers must unpack the returned threads before yielding control.
    pub fn absorb(&self, thief: usize) -> Vec<PackedThread> {
        if self.inbox_len[thief].load(Ordering::Acquire) == 0 { // flows-atomic: consumes steal-inbox
            return Vec::new();
        }
        let mut g = self.inbox[thief].lock();
        let out = std::mem::take(&mut *g);
        self.inbox_len[thief].fetch_sub(out.len(), Ordering::Release); // flows-atomic: publishes steal-inbox
        out
    }

    /// Packed threads currently waiting in `pe`'s inbox.
    #[inline]
    pub fn inbox_len(&self, pe: usize) -> usize {
        self.inbox_len[pe].load(Ordering::Acquire)
    }

    /// Packed threads waiting in any inbox — work the quiescence detector
    /// must not overlook.
    pub fn in_flight(&self) -> usize {
        self.inbox_len
            .iter()
            // flows-atomic: consumes steal-inbox
            .map(|n| n.load(Ordering::Acquire))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn richest_victim_respects_keep_min_and_skips_self() {
        let m = StealMesh::new(4);
        assert_eq!(m.richest_victim(0), None);
        m.publish_load(0, 100);
        assert_eq!(m.richest_victim(0), None, "self is never a victim");
        m.publish_load(1, STEAL_KEEP_MIN); // at the threshold: keep it all
        assert_eq!(m.richest_victim(0), None);
        m.publish_load(2, 7);
        m.publish_load(3, 9);
        assert_eq!(m.richest_victim(0), Some((3, 9)));
        assert_eq!(m.richest_victim(3), Some((0, 100)));
    }

    #[test]
    fn request_word_accumulates_and_drains() {
        let m = StealMesh::new(3);
        assert!(m.request(0, 1));
        assert!(!m.request(0, 1), "second request is idempotent");
        assert!(m.request(0, 2));
        assert!(m.has_requests(0));
        assert_eq!(m.take_requests(0), 0b110);
        assert!(!m.has_requests(0));
        assert_eq!(m.take_requests(0), 0);
    }

    #[test]
    fn inbox_tracks_in_flight_counts() {
        let m = StealMesh::new(2);
        m.donate(1, vec![PackedThread::default(), PackedThread::default()]);
        assert_eq!(m.inbox_len(1), 2);
        assert_eq!(m.in_flight(), 2);
        let got = m.absorb(1);
        assert_eq!(got.len(), 2);
        assert_eq!(m.in_flight(), 0);
        assert!(m.absorb(1).is_empty());
        m.donate(1, Vec::new());
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn in_flight_never_undercounts_during_donation() {
        // Regression: donate() bumps the length mirror BEFORE the threads
        // land in the inbox. With the old inbox-first order there was a
        // window where packed threads sat in the inbox while in_flight()
        // read 0 — the quiescence detector could declare the machine idle
        // with stolen threads still in transit. The deterministic
        // interleaving proof lives in tests/steal_interleave.rs; this is
        // the live two-thread stress of the same invariant.
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let m = Arc::new(StealMesh::new(2));
        let stop = Arc::new(AtomicBool::new(false));
        let donor = {
            let (m, stop) = (m.clone(), stop.clone());
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    m.donate(1, vec![PackedThread::default()]);
                    while m.inbox_len(1) != 0 && !stop.load(Ordering::Relaxed) {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        let t0 = std::time::Instant::now();
        let mut checks = 0u64;
        while t0.elapsed() < std::time::Duration::from_millis(100) {
            // Only this thread absorbs, so between absorbs the mirror is
            // monotonically non-decreasing. Sampling the inbox truth
            // first therefore makes `mirror >= actual` a hard invariant
            // of count-first donation — the inbox-first order violates it
            // whenever the sample lands inside donate()'s window.
            let actual = m.inbox[1].lock().len();
            let mirror = m.in_flight();
            assert!(
                mirror >= actual,
                "in_flight undercounted: mirror {mirror} < inbox {actual}"
            );
            checks += 1;
            m.absorb(1);
        }
        stop.store(true, Ordering::Relaxed);
        donor.join().unwrap();
        assert!(checks > 0);
    }
}
