//! Thread control blocks and stack flavors.

use flows_arch::Context;
use flows_mem::{AliasBinding, CopyStack, ThreadSlab};

/// Machine-wide unique identifier of a user-level thread. Survives
/// migration (allocated from one process-wide counter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ThreadId(pub u64);

impl std::fmt::Display for ThreadId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}", self.0)
    }
}

impl flows_pup::Pup for ThreadId {
    fn pup(&mut self, p: &mut flows_pup::Puper) {
        self.0.pup(p);
    }
}

/// Lifecycle state of a thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// In the run queue, waiting for the CPU.
    Ready,
    /// On the CPU right now.
    Running,
    /// Off the run queue, waiting for an [`crate::awaken`].
    Suspended,
    /// Entry function returned (or panicked); resources reclaimed.
    Done,
}

/// Which stack management scheme a thread uses (paper §3.4; see crate
/// docs for the trade-offs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StackFlavor {
    /// Heap-allocated private stack; fastest switch; **not** migratable.
    Standard,
    /// One common stack address; data copied in/out each switch (§3.4.1).
    StackCopy,
    /// Globally unique slot with stack + heap; migration = byte copy
    /// (§3.4.2).
    Isomalloc,
    /// Per-thread physical frames aliased into per-PE private windows,
    /// mapped once per tenancy rather than per switch (§3.4.3).
    Alias,
}

impl StackFlavor {
    /// All flavors, for sweeps.
    pub const ALL: [StackFlavor; 4] = [
        StackFlavor::Standard,
        StackFlavor::StackCopy,
        StackFlavor::Isomalloc,
        StackFlavor::Alias,
    ];

    /// Short stable name for benchmark tables.
    pub fn name(self) -> &'static str {
        match self {
            StackFlavor::Standard => "standard",
            StackFlavor::StackCopy => "stack-copy",
            StackFlavor::Isomalloc => "isomalloc",
            StackFlavor::Alias => "memory-alias",
        }
    }

    /// Can threads of this flavor migrate between PEs?
    pub fn migratable(self) -> bool {
        !matches!(self, StackFlavor::Standard)
    }
}

/// Per-flavor owned memory resources. The isomalloc slab is boxed: its
/// heap bookkeeping is ~112 inline bytes, which every Tcb of every flavor
/// would otherwise pay through the enum's largest-variant size.
#[derive(Debug)]
pub(crate) enum FlavorData {
    Standard { stack: Vec<u8> },
    Iso { slab: Box<ThreadSlab> },
    /// An isomalloc thread that has not run yet and owns no slot
    /// ([`crate::SchedConfig::lazy_iso`]): the slab is materialized at
    /// first resume. This is what lets one node *hold* a million live
    /// threads — an unstarted thread costs its Tcb and nothing from the
    /// region, so neither committed stacks nor `vm.max_map_count` scale
    /// with spawned threads, only with started ones.
    IsoLazy { want: usize },
    Alias { binding: AliasBinding },
    Copy { image: CopyStack },
}

impl FlavorData {
    pub(crate) fn flavor(&self) -> StackFlavor {
        match self {
            FlavorData::Standard { .. } => StackFlavor::Standard,
            FlavorData::Iso { .. } | FlavorData::IsoLazy { .. } => StackFlavor::Isomalloc,
            FlavorData::Alias { .. } => StackFlavor::Alias,
            FlavorData::Copy { .. } => StackFlavor::StackCopy,
        }
    }
}

/// Spawn-time entry cell handed to a new thread at first resume: a
/// monomorphized shim plus the boxed environment it consumes. The shim
/// moves the environment out of `env` onto the thread's own stack and
/// frees the box immediately — so once a thread is running, none of its
/// entry state lives on the spawning process's heap and a packed image
/// carries all of it.
/// Both shims trust `env` to be the matching `Box::into_raw`, consumed
/// exactly once; the scheduler's spawn/first-resume/drop paths are the
/// only constructors and consumers.
pub(crate) struct Entry {
    /// Moves the env onto the calling stack, frees its box, runs it.
    pub call: fn(*mut ()),
    /// Drops the env in place (never-started thread reclaim).
    pub drop_env: fn(*mut ()),
    /// `Box::into_raw` of the spawn closure.
    pub env: *mut (),
}

/// The control block: everything the scheduler knows about one thread.
///
/// One `Box<Tcb>` exists per live thread, so its size is a direct term in
/// the machine's bytes-per-thread floor at million-thread scale — a size
/// regression test below keeps it honest. The two big-ticket shrinks:
/// `Context` boxes its signal mask (128 inline bytes otherwise), and the
/// entry closure pointer rides in a niche-packed `Option<NonZeroUsize>`.
pub(crate) struct Tcb {
    pub id: ThreadId,
    pub ctx: Context,
    pub state: ThreadState,
    pub flavor: FlavorData,
    /// Raw `Box<Entry>` passed to the entry trampoline at first resume;
    /// consumed there. Present only before the thread starts.
    /// (`Box::into_raw` never returns null, so the niche costs nothing.)
    pub entry_raw: Option<std::num::NonZeroUsize>,
    pub started: bool,
    /// Private globals block (swap-global privatization), if the scheduler
    /// has a `GlobalsLayout`.
    pub globals: Option<Vec<u8>>,
    pub panicked: bool,
    /// Scheduling priority: lower runs first (Charm++ convention).
    pub priority: i32,
}

impl std::fmt::Debug for Tcb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tcb")
            .field("id", &self.id)
            .field("state", &self.state)
            .field("flavor", &self.flavor.flavor())
            .field("started", &self.started)
            .finish()
    }
}

impl Drop for Tcb {
    fn drop(&mut self) {
        // Reclaim a never-started entry closure.
        if let Some(raw) = self.entry_raw.take() {
            // SAFETY: `raw` came from Box::into_raw in spawn and was not
            // consumed (the thread never started); drop_env matches env's
            // real type.
            let e = unsafe { Box::from_raw(raw.get() as *mut Entry) };
            (e.drop_env)(e.env);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flavor_names_and_migratability() {
        assert!(!StackFlavor::Standard.migratable());
        for f in [StackFlavor::StackCopy, StackFlavor::Isomalloc, StackFlavor::Alias] {
            assert!(f.migratable());
        }
        let names: std::collections::HashSet<_> =
            StackFlavor::ALL.iter().map(|f| f.name()).collect();
        assert_eq!(names.len(), 4);
    }

    #[test]
    fn tcb_stays_small() {
        // One Box<Tcb> per live thread: its size is a direct term in the
        // bytes-per-thread floor of the million-thread probe. The biggest
        // historical regression risk is Context growing an inline
        // sigset_t (128 bytes) back.
        assert!(
            std::mem::size_of::<Context>() <= 32,
            "Context grew to {} bytes — did the signal mask move inline?",
            std::mem::size_of::<Context>()
        );
        assert!(
            std::mem::size_of::<Tcb>() <= 128,
            "Tcb grew to {} bytes; million-thread RSS pays this per thread",
            std::mem::size_of::<Tcb>()
        );
    }

    #[test]
    fn thread_id_pups() {
        let mut id = ThreadId(42);
        let bytes = flows_pup::to_bytes(&mut id);
        let back: ThreadId = flows_pup::from_bytes(&bytes).unwrap();
        assert_eq!(back, id);
    }
}
