//! The per-PE user-level thread scheduler (the "Cth" analog, §2.3).
//!
//! Non-preemptive: a thread runs until it calls [`yield_now`], [`suspend`],
//! or returns. The scheduler is strictly single-OS-thread (one per PE of
//! the simulated machine); cross-PE interaction happens through message
//! queues in `flows-converse` and through thread migration
//! ([`Scheduler::pack_thread`] / [`Scheduler::unpack_thread`]).
//!
//! ### Aliasing discipline
//! A scheduler's state is mutated both by `step()` (on the scheduler side
//! of a context switch) and by the free functions called from inside
//! threads (on the other side). All such access goes through a raw pointer
//! to an `UnsafeCell`'d inner struct, and **no Rust reference to scheduler
//! state is ever held across a context switch** — see `Context::swap_raw`.

use crate::privatize::PrivatizeMode;
use crate::shared::{SharedPools, DEFAULT_STACK_LEN};
use crate::tcb::{Entry, FlavorData, StackFlavor, Tcb, ThreadId, ThreadState};
use flows_arch::{set_exit_hook, Context, InitialStack, SwapKind};
use flows_sys::error::{SysError, SysResult};
use flows_trace::{emit, EventKind, LoadTracker};
use std::cell::{Cell, UnsafeCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Partition the thread-id namespace for one process of a multi-process
/// machine: ids minted after this call are at least `rank << 48`, so
/// threads created in different processes can never collide when packed
/// images (which carry their ids) cross the process boundary during
/// migration or recovery. Monotone and idempotent.
pub fn seed_tid_namespace(rank: usize) {
    NEXT_TID.fetch_max((rank as u64) << 48 | 1, Ordering::Relaxed);
}

// flowslint::allow(no-global-state): scheduler identity is per-OS-thread
// by design — a migratable flow asks "which scheduler is driving me right
// now?", and the answer changes when the flow migrates. This is the one
// TLS cell that must NOT migrate with the thread.
thread_local! {
    static CURRENT_SCHED: Cell<*const Scheduler> = const { Cell::new(std::ptr::null()) };
}

/// Scheduler configuration.
#[derive(Debug, Clone)]
pub struct SchedConfig {
    /// Swap routine used for every thread of this scheduler.
    pub swap_kind: SwapKind,
    /// Committed stack bytes for Standard and Isomalloc threads.
    pub stack_len: usize,
    /// How privatized globals are switched.
    pub privatize: PrivatizeMode,
    /// The registered globals, if the program privatizes any.
    pub globals: Option<Arc<crate::privatize::GlobalsLayout>>,
    /// Defer isomalloc slot allocation to first resume. Spawning then
    /// costs only the Tcb — no slot, no commit, no VMA — so a node can
    /// hold far more live threads than `vm.max_map_count` allows
    /// committed stacks. Off by default: eager spawn reports slot
    /// exhaustion as a spawn error rather than failing the thread when
    /// it first runs.
    pub lazy_iso: bool,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            swap_kind: SwapKind::Minimal,
            stack_len: DEFAULT_STACK_LEN,
            privatize: PrivatizeMode::GotSwap,
            globals: None,
            lazy_iso: false,
        }
    }
}

/// Counters exposed for tests and benches.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Thread resumes (≈ context switches into threads).
    pub switches: u64,
    /// Threads ever spawned here.
    pub spawned: u64,
    /// Threads that finished here.
    pub completed: u64,
    /// Threads packed for migration away.
    pub migrations_out: u64,
    /// Threads unpacked after migrating in.
    pub migrations_in: u64,
}

/// Priorities inside `[LANE_MIN, LANE_MIN + LANES)` get their own FIFO
/// lane; anything outside falls back to the overflow heap.
const LANE_MIN: i32 = -32;
const LANES: usize = 64;

/// Priority run queue: lower priority value = more urgent (Charm++'s
/// convention); FIFO among equal priorities (§2.3 — "the application's
/// priority structure can be directly used by the thread scheduler").
///
/// Implemented as 64 intrusive FIFO lanes (one per priority in
/// `[-32, 31]`) plus a one-word occupancy bitmask: push, pop and the
/// "anything ready?" probe are O(1) — `trailing_zeros` of the mask finds
/// the most urgent non-empty lane. Out-of-range priorities (rare) ride a
/// conventional binary heap on the side.
pub(crate) struct RunQueue {
    lanes: Vec<std::collections::VecDeque<ThreadId>>,
    /// Bit `i` set ⇔ `lanes[i]` is non-empty.
    ready: u64,
    overflow: std::collections::BinaryHeap<std::cmp::Reverse<(i32, u64, ThreadId)>>,
    seq: u64,
    len: usize,
}

impl Default for RunQueue {
    fn default() -> RunQueue {
        RunQueue {
            lanes: (0..LANES).map(|_| std::collections::VecDeque::new()).collect(),
            ready: 0,
            overflow: std::collections::BinaryHeap::new(),
            seq: 0,
            len: 0,
        }
    }
}

impl RunQueue {
    #[inline]
    fn lane_of(priority: i32) -> Option<usize> {
        let lane = priority.wrapping_sub(LANE_MIN);
        (0..LANES as i32).contains(&lane).then_some(lane as usize)
    }

    pub fn push(&mut self, tid: ThreadId, priority: i32) {
        self.len += 1;
        match Self::lane_of(priority) {
            Some(lane) => {
                self.lanes[lane].push_back(tid);
                self.ready |= 1 << lane;
            }
            None => {
                self.seq += 1;
                self.overflow.push(std::cmp::Reverse((priority, self.seq, tid)));
            }
        }
    }

    pub fn pop(&mut self) -> Option<ThreadId> {
        if self.ready != 0 {
            let lane = self.ready.trailing_zeros() as usize;
            // An overflow priority can only beat the lanes from below
            // their range (more urgent than -32).
            if let Some(std::cmp::Reverse((p, _, _))) = self.overflow.peek() {
                if *p < lane as i32 + LANE_MIN {
                    self.len -= 1;
                    return self.overflow.pop().map(|std::cmp::Reverse((_, _, t))| t);
                }
            }
            let tid = self.lanes[lane].pop_front().expect("ready bit set");
            if self.lanes[lane].is_empty() {
                self.ready &= !(1 << lane);
            }
            self.len -= 1;
            return Some(tid);
        }
        let tid = self.overflow.pop().map(|std::cmp::Reverse((_, _, t))| t);
        if tid.is_some() {
            self.len -= 1;
        }
        tid
    }

    pub fn len(&self) -> usize {
        self.len
    }

    /// Chunked tail steal: take up to `max` entries — never more than
    /// half the lane — from the **back** of the longest lane, taking
    /// only entries `stealable` approves. The victim's remaining threads are
    /// untouched at the front of the lane, so FIFO-within-priority is
    /// preserved for everything it keeps; the stolen chunk comes back in
    /// its original arrival order (oldest first), ready to re-queue on
    /// the thief in the same relative order. The overflow heap (rare
    /// out-of-range priorities) is deliberately not stealable.
    pub fn steal_tail(
        &mut self,
        max: usize,
        mut stealable: impl FnMut(ThreadId) -> bool,
    ) -> Vec<ThreadId> {
        let Some(lane_idx) = (0..LANES)
            .filter(|&i| self.ready & (1 << i) != 0)
            .max_by_key(|&i| self.lanes[i].len())
        else {
            return Vec::new();
        };
        let lane = &mut self.lanes[lane_idx];
        let quota = max.min(lane.len() / 2);
        if quota == 0 {
            return Vec::new();
        }
        // Walk from the back, collecting indices of stealable entries;
        // indices come out descending, so removal never shifts a
        // yet-to-be-removed index.
        let mut picked: Vec<usize> = Vec::with_capacity(quota);
        for i in (0..lane.len()).rev() {
            if picked.len() == quota {
                break;
            }
            if stealable(lane[i]) {
                picked.push(i);
            }
        }
        let mut stolen: Vec<ThreadId> = picked
            .iter()
            .map(|&i| lane.remove(i).expect("picked index in range"))
            .collect();
        stolen.reverse(); // back-to-front removal → restore arrival order
        self.len -= stolen.len();
        if lane.is_empty() {
            self.ready &= !(1 << lane_idx);
        }
        stolen
    }

    /// Physically remove every queued entry of `tid` (cold path: only
    /// migration/pack uses it). O(queued threads), which is fine — a stale
    /// entry left behind could later switch into a thread that has since
    /// suspended or left the PE.
    pub fn remove(&mut self, tid: ThreadId) {
        for (i, lane) in self.lanes.iter_mut().enumerate() {
            let before = lane.len();
            lane.retain(|t| *t != tid);
            self.len -= before - lane.len();
            if lane.is_empty() {
                self.ready &= !(1 << i);
            }
        }
        let before = self.overflow.len();
        let entries: Vec<_> = std::mem::take(&mut self.overflow)
            .into_iter()
            .filter(|std::cmp::Reverse((_, _, t))| *t != tid)
            .collect();
        self.overflow = entries.into();
        self.len -= before - self.overflow.len();
    }
}

/// Retired Standard stacks kept for reuse (bounded so a spawn burst does
/// not pin memory forever).
const STD_STACK_CACHE: usize = 128;

pub(crate) struct Inner {
    pub pe: usize,
    pub shared: Arc<SharedPools>,
    pub cfg: SchedConfig,
    pub runq: RunQueue,
    pub threads: HashMap<ThreadId, Box<Tcb>>,
    pub current: Option<ThreadId>,
    /// The running thread's control block, cached so thread-side calls
    /// (`yield_now`, `suspend`, `with_current_tcb`) skip the map lookup.
    /// Valid exactly while `current` is `Some` (`Box<Tcb>` addresses are
    /// stable across map rehashes).
    current_tcb: *mut Tcb,
    pub sched_ctx: Context,
    pub stats: SchedStats,
    /// Scratch buffer for `PrivatizeMode::CopyInOut`.
    globals_buf: Vec<u8>,
    /// Saved TLS installation to restore after a thread runs.
    globals_prev: (*mut u8, u64),
    /// Stacks of finished Standard threads, reused (uncleared — a fresh
    /// bootstrap frame is built on top) instead of reallocated.
    std_stacks: Vec<Vec<u8>>,
    /// Trace-derived per-thread CPU accounting — the load balancer's
    /// measurement input (always on, independent of the trace gate).
    pub tracker: LoadTracker,
}

/// One PE's user-level thread scheduler. `!Send`/`!Sync`: each PE's OS
/// thread builds and drives its own.
pub struct Scheduler {
    inner: UnsafeCell<Inner>,
}

impl std::fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // SAFETY: read-only peek at plain fields.
        let inner = unsafe { &*self.inner.get() };
        f.debug_struct("Scheduler")
            .field("pe", &inner.pe)
            .field("threads", &inner.threads.len())
            .field("runnable", &inner.runq.len())
            .finish()
    }
}

impl Scheduler {
    /// Create the scheduler for PE `pe` of the machine whose memory
    /// substrate is `shared`.
    pub fn new(pe: usize, shared: Arc<SharedPools>, cfg: SchedConfig) -> Scheduler {
        let globals_buf = cfg
            .globals
            .as_ref()
            .map(|l| vec![0u8; l.block_len()])
            .unwrap_or_default();
        Scheduler {
            inner: UnsafeCell::new(Inner {
                pe,
                shared,
                sched_ctx: Context::new(cfg.swap_kind),
                cfg,
                runq: RunQueue::default(),
                threads: HashMap::new(),
                current: None,
                current_tcb: std::ptr::null_mut(),
                stats: SchedStats::default(),
                globals_buf,
                globals_prev: (std::ptr::null_mut(), 0),
                std_stacks: Vec::new(),
                tracker: LoadTracker::new(),
            }),
        }
    }

    fn inner(&self) -> *mut Inner {
        self.inner.get()
    }

    /// This scheduler's PE number.
    pub fn pe(&self) -> usize {
        // SAFETY: immutable field.
        unsafe { (*self.inner()).pe }
    }

    /// The machine-wide memory pools.
    pub fn shared(&self) -> Arc<SharedPools> {
        // SAFETY: clone of an immutable Arc field.
        unsafe { (*self.inner()).shared.clone() }
    }

    /// Spawn a thread with the scheduler's default stack length.
    pub fn spawn(
        &self,
        flavor: StackFlavor,
        f: impl FnOnce() + 'static,
    ) -> SysResult<ThreadId> {
        // SAFETY: default read.
        let len = unsafe { (*self.inner()).cfg.stack_len };
        self.spawn_with(flavor, len, f)
    }

    /// Spawn a thread with an explicit committed stack length (Standard
    /// and Isomalloc flavors; Copy/Alias use the pool's common length).
    pub fn spawn_with(
        &self,
        flavor: StackFlavor,
        stack_len: usize,
        f: impl FnOnce() + 'static,
    ) -> SysResult<ThreadId> {
        self.spawn_prio(flavor, stack_len, 0, f)
    }

    /// Spawn with a scheduling priority: lower values run first; equal
    /// priorities round-robin. The default everywhere else is 0.
    pub fn spawn_prio(
        &self,
        flavor: StackFlavor,
        stack_len: usize,
        priority: i32,
        f: impl FnOnce() + 'static,
    ) -> SysResult<ThreadId> {
        // SAFETY: single-threaded access; no context switch in here.
        let inner = unsafe { &mut *self.inner() };
        let data = match flavor {
            StackFlavor::Standard => {
                let want = stack_len.max(flows_arch::stack::MIN_STACK * 4);
                let stack = match inner.std_stacks.iter().position(|s| s.len() == want) {
                    // Reuse a retired stack as-is: its contents are dead
                    // and the bootstrap frame is rebuilt on first resume.
                    Some(i) => inner.std_stacks.swap_remove(i),
                    None => vec![0u8; want],
                };
                FlavorData::Standard { stack }
            }
            StackFlavor::Isomalloc => {
                let want = flows_sys::page::page_align_up(stack_len.max(4096));
                if inner.cfg.lazy_iso {
                    // Million-thread mode: the slab (slot + commit) is
                    // materialized at first resume, so an unstarted
                    // thread costs no region resources at all.
                    FlavorData::IsoLazy { want }
                } else {
                    // Prefer a parked slab from the reclaim cache — its
                    // slot is still committed and warm, so the rebuild
                    // costs no syscalls at all — including a neighbour
                    // PE's slab when the local list is dry (stolen
                    // threads that exited here leave warm slabs under
                    // other PEs' labels).
                    let cached = inner.shared.slab_cache().lock().take_any(inner.pe, want);
                    let slab = match cached {
                        Some(slab) => slab,
                        None => {
                            let slot = inner.shared.region().alloc_slot(inner.pe)?;
                            flows_mem::ThreadSlab::new(slot, want)?
                        }
                    };
                    FlavorData::Iso { slab: Box::new(slab) }
                }
            }
            StackFlavor::Alias => {
                // Warm pairs (window + frame, mapping intact) are preferred
                // inside bind: respawning after an exit is syscall-free.
                let binding = inner.shared.alias().lock().bind(inner.pe)?;
                FlavorData::Alias { binding }
            }
            StackFlavor::StackCopy => FlavorData::Copy {
                image: flows_mem::CopyStack::new(),
            },
        };
        let id = ThreadId(NEXT_TID.fetch_add(1, Ordering::Relaxed));
        let ftag = crate::migrate::flavor_tag(data.flavor()) as u64;
        let entry_raw = entry_cell(f);
        let tcb = Box::new(Tcb {
            id,
            ctx: Context::new(inner.cfg.swap_kind),
            state: ThreadState::Ready,
            flavor: data,
            entry_raw: Some(entry_raw),
            started: false,
            globals: inner.cfg.globals.as_ref().map(|l| l.new_block()),
            panicked: false,
            priority,
        });
        inner.threads.insert(id, tcb);
        inner.runq.push(id, priority);
        inner.stats.spawned += 1;
        emit(EventKind::ThreadCreate, id.0, ftag, stack_len as u64);
        Ok(id)
    }

    /// Run one ready thread until it suspends/yields/finishes. Returns
    /// `false` when the run queue is empty.
    pub fn step(&self) -> bool {
        // SAFETY: see the module-level aliasing discipline. No reference
        // into `inner` outlives a context switch.
        unsafe {
            let inner = self.inner();
            assert!(
                (*inner).current.is_none(),
                "Scheduler::step called from inside a running thread"
            );
            let Some(tid) = (*inner).runq.pop() else {
                return false;
            };
            let prev = CURRENT_SCHED.with(|c| c.replace(self as *const Scheduler));
            set_exit_hook(thread_exit_hook);
            self.resume(tid);
            CURRENT_SCHED.with(|c| c.set(prev));
            true
        }
    }

    /// Run until no thread is runnable.
    pub fn run(&self) {
        while self.step() {}
    }

    /// Drain this PE's deferred-reclaim lists: parked alias warm pairs
    /// and cached isomalloc slabs are released in coalesced batches.
    /// Called when the PE goes idle (the converse pump with no progress);
    /// deliberately *not* part of [`Scheduler::run`], so back-to-back
    /// bursts of work keep their warm pools.
    pub fn flush_reclaim(&self) {
        // SAFETY: plain access between switches.
        let inner = unsafe { &mut *self.inner() };
        let _ = inner.shared.alias().lock().flush(inner.pe);
        let _ = inner.shared.slab_cache().lock().flush(inner.pe);
    }

    /// Publish this PE's runnable count to the steal mesh so idle PEs
    /// can pick victims. Called at pump boundaries, not per switch — a
    /// slightly stale count only costs a thief a worse victim choice.
    #[inline]
    pub fn publish_steal_load(&self) {
        // SAFETY: plain read between switches.
        let inner = unsafe { &*self.inner() };
        inner.shared.steal().publish_load(inner.pe, inner.runq.len());
    }

    /// Victim half of the steal protocol: if thieves have requested work
    /// and this PE has enough to share, pop a chunk from the tail of the
    /// richest run-queue lane, pack the threads, and deposit them in the
    /// requesters' inboxes (round-robin). Returns a bitmask of thief PEs
    /// that received at least one thread — the converse layer wakes
    /// those parkers. Must be called between switches.
    pub fn donate_steals(&self) -> u64 {
        // SAFETY: single-threaded access between switches; pack_thread
        // below re-establishes its own access.
        let inner = unsafe { &mut *self.inner() };
        assert!(
            inner.current.is_none(),
            "donate_steals called from inside a running thread"
        );
        let mesh = inner.shared.steal();
        if !mesh.has_requests(inner.pe) || inner.runq.len() <= crate::steal::STEAL_KEEP_MIN {
            return 0;
        }
        let mask = mesh.take_requests(inner.pe);
        let me = inner.pe;
        let thieves: Vec<usize> = (0..mesh.num_pes())
            .filter(|&t| t != me && mask & (1 << (t as u64 & 63)) != 0)
            .collect();
        if thieves.is_empty() {
            return 0;
        }
        // Split borrows: the stealability check reads the thread map while
        // the queue mutates — disjoint fields of Inner.
        let Inner { runq, threads, .. } = inner;
        let tids = runq.steal_tail(crate::steal::MAX_STEAL_CHUNK, |tid| {
            threads.get(&tid).is_some_and(|t| {
                t.started && t.state == ThreadState::Ready && t.flavor.flavor().migratable()
            })
        });
        if tids.is_empty() {
            return 0; // nothing stealable yet; thieves will re-request
        }
        let mut boxes: Vec<Vec<crate::migrate::PackedThread>> =
            thieves.iter().map(|_| Vec::new()).collect();
        for (i, tid) in tids.into_iter().enumerate() {
            // The tid was just unqueued by steal_tail; pack skips the
            // O(queue) removal scan.
            match self.pack_thread_unqueued(tid) {
                Ok(p) => boxes[i % thieves.len()].push(p),
                Err(_) => {
                    // Pack refused (cannot happen for entries the filter
                    // approved, but never lose a thread): re-queue it.
                    // SAFETY: plain access between switches.
                    let inner = unsafe { &mut *self.inner() };
                    if let Some(t) = inner.threads.get(&tid) {
                        let prio = t.priority;
                        inner.runq.push(tid, prio);
                    }
                }
            }
        }
        // SAFETY: re-borrow after pack_thread_unqueued calls.
        let inner = unsafe { &*self.inner() };
        let mesh = inner.shared.steal();
        let mut woken = 0u64;
        for (t, chunk) in thieves.into_iter().zip(boxes) {
            if !chunk.is_empty() {
                woken |= 1 << (t as u64 & 63);
                mesh.donate(t, chunk);
            }
        }
        woken
    }

    /// Thief half of the steal protocol: drain this PE's donation inbox,
    /// unpacking every thread locally (warm slot/window adoption — see
    /// flows-mem). Returns the number of threads absorbed; emits one
    /// `StealHit` covering the batch.
    pub fn absorb_steals(&self) -> usize {
        let (pe, shared) = {
            // SAFETY: plain reads between switches.
            let inner = unsafe { &*self.inner() };
            (inner.pe, inner.shared.clone())
        };
        let packed = shared.steal().absorb(pe);
        if packed.is_empty() {
            return 0;
        }
        let mut n = 0usize;
        let mut bytes = 0u64;
        for p in packed {
            bytes += p.payload_len() as u64;
            match self.unpack_thread(p) {
                Ok(_) => n += 1,
                Err(e) => debug_assert!(false, "absorbed thread failed to unpack: {e}"),
            }
        }
        if n > 0 {
            emit(EventKind::StealHit, pe as u64, n as u64, bytes);
        }
        n
    }

    /// Post (or refresh) a steal request at the currently richest victim.
    /// Cheap when the machine is genuinely idle — two relaxed scans, no
    /// locks — and idempotent, so idle paths may call it every iteration.
    /// Safe to call while this PE is counted idle: it moves no threads.
    pub fn request_steal(&self) {
        // SAFETY: plain reads between switches.
        let inner = unsafe { &*self.inner() };
        let mesh = inner.shared.steal();
        mesh.publish_load(inner.pe, inner.runq.len());
        if let Some((victim, vload)) = mesh.richest_victim(inner.pe) {
            if mesh.request(victim, inner.pe) {
                emit(
                    EventKind::StealAttempt,
                    victim as u64,
                    inner.pe as u64,
                    vload as u64,
                );
            }
        }
    }

    /// One idle-path steal tick: absorb any donations; when the inbox is
    /// dry, post (or refresh) a request at the richest victim. Returns the
    /// number of threads absorbed (0 when the tick only planted a
    /// request). Callers must NOT be announced at an idle barrier —
    /// absorbing moves in-flight threads into this scheduler, and a
    /// quiescence detector that saw this PE as idle *and* the mesh as
    /// empty would declare victory mid-move ([`Scheduler::request_steal`]
    /// is the barrier-safe half).
    pub fn try_steal(&self) -> usize {
        let n = self.absorb_steals();
        if n > 0 {
            return n;
        }
        self.request_steal();
        0
    }

    /// Packed threads waiting in this PE's donation inbox (local work the
    /// idle/quiescence paths must not overlook).
    pub fn steal_inbox_len(&self) -> usize {
        // SAFETY: plain reads between switches.
        let inner = unsafe { &*self.inner() };
        inner.shared.steal().inbox_len(inner.pe)
    }

    /// # Safety
    /// Must be called on the scheduler's own OS thread, outside any
    /// running thread.
    unsafe fn resume(&self, tid: ThreadId) {
        let inner = self.inner();
        // SAFETY: exclusive access between switches.
        unsafe {
            let tcb: *mut Tcb = match (*inner).threads.get_mut(&tid) {
                Some(b) => &mut **b,
                None => return, // packed away while queued
            };
            if (*tcb).state == ThreadState::Done {
                return;
            }

            // Lazy isomalloc: this thread's first landing on a CPU is
            // where it finally acquires a slot (warm cached slab when one
            // fits, fresh allocation otherwise). Failure is reported the
            // way other resume-time resource failures are: the thread
            // dies marked panicked rather than poisoning the scheduler.
            if let FlavorData::IsoLazy { want } = (*tcb).flavor {
                let cached = (*inner).shared.slab_cache().lock().take_any((*inner).pe, want);
                let built = match cached {
                    Some(slab) => Ok(slab),
                    None => (*inner)
                        .shared
                        .region()
                        .alloc_slot((*inner).pe)
                        .and_then(|slot| flows_mem::ThreadSlab::new(slot, want)),
                };
                match built {
                    Ok(slab) => (*tcb).flavor = FlavorData::Iso { slab: Box::new(slab) },
                    Err(_) => {
                        (*tcb).state = ThreadState::Done;
                        (*tcb).panicked = true;
                        return;
                    }
                }
            }

            // Flavor preparation. Only the stack-copy common region still
            // needs its process-wide lock held while the thread runs;
            // alias threads own private windows, so a resumed alias
            // thread whose window is already mapped touches neither the
            // pool lock nor the kernel — the remap has left the context-
            // switch hot loop entirely.
            let mut copy_guard = None;
            let stack_top: usize = match &mut (*tcb).flavor {
                FlavorData::Standard { stack } => stack.as_ptr() as usize + stack.len(),
                FlavorData::Iso { slab } => slab.stack_top(),
                FlavorData::IsoLazy { .. } => unreachable!("materialized above"),
                FlavorData::Alias { binding } => {
                    if !binding.mapped {
                        // First landing on this window (fresh bind or
                        // migrated in unmapped): one MAP_FIXED, then never
                        // again for this tenancy.
                        let mut g = (*inner).shared.alias().lock();
                        if g.map_window(binding).is_err() {
                            (*tcb).state = ThreadState::Done;
                            (*tcb).panicked = true;
                            return;
                        }
                    }
                    binding.top
                }
                FlavorData::Copy { image } => {
                    let g = (*inner).shared.copy().lock();
                    // SAFETY: we hold the region lock; nothing executes on
                    // the common region.
                    if g.switch_in(image).is_err() {
                        (*tcb).state = ThreadState::Done;
                        (*tcb).panicked = true;
                        return;
                    }
                    let top = g.top();
                    copy_guard = Some(g);
                    top
                }
            };

            // Sanitize: plant a canary word at the stack floor of flavors
            // that own dedicated stack memory. Verified after the thread
            // suspends — a clobbered canary means the stack overflowed or
            // a wild write landed at its floor while the thread ran.
            #[cfg(feature = "sanitize")]
            let canary_floor: Option<usize> = match &(*tcb).flavor {
                FlavorData::Standard { stack } => Some(stack.as_ptr() as usize),
                FlavorData::Iso { slab } => Some(slab.stack_bottom()),
                // Alias windows are private per-thread now, so their floor
                // can carry a canary too.
                FlavorData::Alias { binding } => Some(binding.floor),
                // Copy threads execute on the shared common region whose
                // floor is not private to one thread.
                _ => None,
            };
            #[cfg(feature = "sanitize")]
            if let Some(floor) = canary_floor {
                // SAFETY: floor is the base of this thread's committed
                // stack; live frames are far above it (or overflowing,
                // which is exactly what the canary detects).
                flows_arch::canary::arm(floor);
            }

            if !(*tcb).started {
                let entry_raw = (*tcb)
                    .entry_raw
                    .take()
                    .expect("unstarted thread without an entry closure");
                // SAFETY: the stack region is committed/active; the frame
                // stays valid while the thread lives (flavor data owns it).
                (*tcb).ctx = InitialStack::build(
                    (*inner).cfg.swap_kind,
                    stack_top as *mut u8,
                    thread_main,
                    entry_raw.get(),
                );
                (*tcb).started = true;
            }

            // Swap-global privatization: install the thread's block. The
            // layout is borrowed, not Arc-cloned — the borrow ends before
            // the context switch below.
            if let Some(layout) = (*inner).cfg.globals.as_deref() {
                if let Some(block) = (*tcb).globals.as_mut() {
                    let prev = match (*inner).cfg.privatize {
                        PrivatizeMode::GotSwap => layout.install_block(block),
                        PrivatizeMode::CopyInOut => {
                            (*inner).globals_buf.copy_from_slice(block);
                            layout.install_block(&mut (*inner).globals_buf)
                        }
                    };
                    (*inner).globals_prev = prev;
                }
            }

            (*inner).current = Some(tid);
            (*inner).current_tcb = tcb;
            (*tcb).state = ThreadState::Running;
            (*inner).stats.switches += 1;
            let ftag = crate::migrate::flavor_tag((*tcb).flavor.flavor()) as u64;
            emit(EventKind::SwitchIn, tid.0, ftag, 0);
            (*inner).tracker.begin();

            Context::swap_raw(&raw mut (*inner).sched_ctx, &raw const (*tcb).ctx);

            // ---- the thread ran and came back ----
            let burst = (*inner).tracker.end(tid.0);
            emit(EventKind::SwitchOut, tid.0, burst, ftag);
            (*inner).current = None;
            (*inner).current_tcb = std::ptr::null_mut();
            let done = (*tcb).state == ThreadState::Done;

            #[cfg(feature = "sanitize")]
            if let Some(floor) = canary_floor {
                // SAFETY: the thread is suspended; its stack memory is
                // still owned by the flavor data.
                if !flows_arch::canary::intact(floor) {
                    flows_trace::san::trip(
                        flows_trace::san::SanCheck::StackCanary,
                        "stack canary clobbered while the thread ran",
                        tid.0,
                        floor as u64,
                    );
                }
            }

            if let Some(layout) = (*inner).cfg.globals.as_deref() {
                if let Some(block) = (*tcb).globals.as_mut() {
                    if (*inner).cfg.privatize == PrivatizeMode::CopyInOut {
                        block.copy_from_slice(&(*inner).globals_buf);
                    }
                    layout.restore((*inner).globals_prev);
                }
            }

            if let FlavorData::Copy { image } = &mut (*tcb).flavor {
                if !done {
                    let g = copy_guard.as_ref().expect("copy guard");
                    // SAFETY: thread is suspended; we still hold the
                    // region lock.
                    g.switch_out(image, (*tcb).ctx.saved_sp())
                        .expect("copy-stack switch out");
                }
            }
            drop(copy_guard);

            if done {
                if let Some(mut dead) = (*inner).threads.remove(&tid) {
                    // Every flavor's exit path is a deferred-reclaim list
                    // push — no unmap, no decommit, no punch inline.
                    let flavor = std::mem::replace(
                        &mut dead.flavor,
                        FlavorData::Copy {
                            image: flows_mem::CopyStack::new(),
                        },
                    );
                    match flavor {
                        FlavorData::Standard { stack } => {
                            if (*inner).std_stacks.len() < STD_STACK_CACHE {
                                (*inner).std_stacks.push(stack);
                            }
                        }
                        FlavorData::Iso { slab } => {
                            let _ = (*inner)
                                .shared
                                .slab_cache()
                                .lock()
                                .put((*inner).pe, *slab);
                        }
                        FlavorData::Alias { binding } => {
                            // Parks the (window, frame) pair warm with its
                            // mapping intact; zero syscalls here.
                            let _ = (*inner).shared.alias().lock().retire(binding);
                        }
                        FlavorData::Copy { .. } => {}
                        // A thread cannot exit without having run, and
                        // running materializes the slab.
                        FlavorData::IsoLazy { .. } => unreachable!("exited without starting"),
                    }
                }
                (*inner).stats.completed += 1;
                let lifetime = (*inner).tracker.take(tid.0);
                emit(EventKind::ThreadExit, tid.0, lifetime, 0);
            }
        }
    }

    /// Move a suspended thread back to the run queue.
    pub fn awaken_tid(&self, tid: ThreadId) -> SysResult<()> {
        // SAFETY: single-threaded access between switches.
        let inner = unsafe { &mut *self.inner() };
        match inner.threads.get_mut(&tid) {
            Some(tcb) if tcb.state == ThreadState::Suspended => {
                tcb.state = ThreadState::Ready;
                let prio = tcb.priority;
                inner.runq.push(tid, prio);
                Ok(())
            }
            Some(tcb) => Err(awaken_state_error(tid, tcb.state)),
            None => Err(SysError::logic("awaken", format!("{tid} is not here"))),
        }
    }

    /// Number of threads in the run queue.
    pub fn runnable(&self) -> usize {
        // SAFETY: plain read between switches.
        unsafe { (*self.inner()).runq.len() }
    }

    /// Number of live threads on this PE.
    pub fn thread_count(&self) -> usize {
        // SAFETY: plain read between switches.
        unsafe { (*self.inner()).threads.len() }
    }

    /// A thread's state, if it lives here.
    pub fn state(&self, tid: ThreadId) -> Option<ThreadState> {
        // SAFETY: plain read between switches.
        unsafe { (*self.inner()).threads.get(&tid).map(|t| t.state) }
    }

    /// Whether the thread's entry panicked (observable until the Tcb is
    /// reaped at completion — poll from another thread before then, or
    /// check [`SchedStats::completed`]).
    pub fn panicked(&self, tid: ThreadId) -> Option<bool> {
        // SAFETY: plain read between switches.
        unsafe { (*self.inner()).threads.get(&tid).map(|t| t.panicked) }
    }

    /// Counters.
    pub fn stats(&self) -> SchedStats {
        // SAFETY: plain read between switches.
        unsafe { (*self.inner()).stats }
    }

    /// Measured per-thread on-CPU time (the load balancer's input):
    /// `(thread, nanoseconds)` pairs for every live thread, read from
    /// the trace-derived [`LoadTracker`].
    pub fn loads(&self) -> Vec<(ThreadId, u64)> {
        // SAFETY: plain read between switches.
        let inner = unsafe { &*self.inner() };
        inner
            .threads
            .keys()
            .map(|&id| (id, inner.tracker.get(id.0)))
            .collect()
    }

    /// Zero the per-thread load counters (start of a new LB epoch).
    pub fn reset_loads(&self) {
        // SAFETY: plain mutation between switches.
        let inner = unsafe { &mut *self.inner() };
        inner.tracker.reset_all();
    }

    /// Zero one thread's load counter (when its LB epoch rolls over).
    pub fn reset_load_tid(&self, tid: ThreadId) {
        // SAFETY: plain mutation between switches.
        let inner = unsafe { &mut *self.inner() };
        inner.tracker.reset(tid.0);
    }

    pub(crate) fn inner_ptr(&self) -> *mut Inner {
        self.inner()
    }
}

/// Build the heap cell the entry trampoline consumes at first resume.
fn entry_cell<F: FnOnce() + 'static>(f: F) -> std::num::NonZeroUsize {
    fn call_on_stack<F: FnOnce()>(env: *mut ()) {
        // Move the environment out of its spawn-time box onto THIS
        // thread's own stack and free the box now — while still in the
        // process (and at latest the first resume) that allocated it.
        // From here on the thread's entry state lives entirely in its own
        // stack: a packed image carries it, and thread exit frees nothing
        // from a heap that may belong to another process after a
        // cross-process migration. (Return addresses still point into the
        // text segment, which is why such migration additionally needs an
        // identical text base — `TopologySpec::migratable` in flows-net.)
        // SAFETY: `Entry` invariant — env is the matching `Box::into_raw`,
        // consumed exactly once (at first resume).
        let f: F = *unsafe { Box::from_raw(env as *mut F) };
        f();
    }
    fn drop_env<F>(env: *mut ()) {
        // SAFETY: `Entry` invariant, never-started reclaim path.
        drop(unsafe { Box::from_raw(env as *mut F) });
    }
    let cell = Box::new(Entry {
        call: call_on_stack::<F>,
        drop_env: drop_env::<F>,
        env: Box::into_raw(Box::new(f)) as *mut (),
    });
    std::num::NonZeroUsize::new(Box::into_raw(cell) as usize).expect("Box::into_raw is never null")
}

/// The C-ABI entry every flow starts in: consumes the entry cell and
/// runs it, catching panics so a failing thread cannot unwind into the
/// hand-crafted bootstrap frame.
extern "C" fn thread_main(arg: usize) {
    // SAFETY: `arg` is the Box::into_raw of spawn's entry cell, consumed
    // exactly once (entry_raw was take()n before first resume).
    let entry = unsafe { Box::from_raw(arg as *mut Entry) };
    let (call, env) = (entry.call, entry.env);
    drop(entry);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| call(env)));
    if result.is_err() {
        with_current_tcb(|tcb| tcb.panicked = true);
    }
    // Returning lands in the exit trampoline → thread_exit_hook.
}

fn with_current_tcb<R>(f: impl FnOnce(&mut Tcb) -> R) -> Option<R> {
    let sched = CURRENT_SCHED.with(|c| c.get());
    if sched.is_null() {
        return None;
    }
    // SAFETY: called from inside a running thread; the scheduler side
    // holds no references (see module docs). `current_tcb` is non-null
    // exactly while a thread runs.
    unsafe {
        let inner = (*sched).inner_ptr();
        let tcb = (*inner).current_tcb;
        if tcb.is_null() {
            return None;
        }
        Some(f(&mut *tcb))
    }
}

/// Exit hook installed per OS thread: marks the current thread Done and
/// switches back to the scheduler, never to return.
fn thread_exit_hook() -> ! {
    let sched = CURRENT_SCHED.with(|c| c.get());
    assert!(!sched.is_null(), "thread exited outside a scheduler");
    // SAFETY: we are on the thread's stack; the scheduler context is valid
    // (it is suspended in resume()).
    unsafe {
        let inner = (*sched).inner_ptr();
        assert!((*inner).current.is_some(), "exit hook with no current thread");
        let tcb: *mut Tcb = (*inner).current_tcb;
        (*tcb).state = ThreadState::Done;
        let mut scratch = Context::new((*tcb).ctx.kind());
        Context::swap_raw(&raw mut scratch, &raw const (*inner).sched_ctx);
    }
    unreachable!("a finished thread was resumed");
}

fn current_sched() -> *const Scheduler {
    let s = CURRENT_SCHED.with(|c| c.get());
    assert!(
        !s.is_null(),
        "this operation must be called from inside a flows-core thread"
    );
    s
}

/// Put the calling thread at the back of the run queue and run someone
/// else. No-op when called outside a thread.
pub fn yield_now() {
    let sched = CURRENT_SCHED.with(|c| c.get());
    if sched.is_null() {
        return;
    }
    // SAFETY: module-level aliasing discipline.
    unsafe {
        let inner = (*sched).inner_ptr();
        let Some(tid) = (*inner).current else { return };
        let tcb: *mut Tcb = (*inner).current_tcb;
        (*tcb).state = ThreadState::Ready;
        let prio = (*tcb).priority;
        (*inner).runq.push(tid, prio);
        Context::swap_raw(&raw mut (*tcb).ctx, &raw const (*inner).sched_ctx);
    }
}

/// Suspend the calling thread until [`awaken`]/[`Scheduler::awaken_tid`].
pub fn suspend() {
    let sched = current_sched();
    // SAFETY: module-level aliasing discipline.
    unsafe {
        let inner = (*sched).inner_ptr();
        assert!(
            (*inner).current.is_some(),
            "suspend() called outside a thread"
        );
        let tcb: *mut Tcb = (*inner).current_tcb;
        (*tcb).state = ThreadState::Suspended;
        Context::swap_raw(&raw mut (*tcb).ctx, &raw const (*inner).sched_ctx);
    }
}

/// The calling thread's id, if inside one.
pub fn current() -> Option<ThreadId> {
    let sched = CURRENT_SCHED.with(|c| c.get());
    if sched.is_null() {
        return None;
    }
    // SAFETY: plain read.
    unsafe { (*(*sched).inner_ptr()).current }
}

/// Awaken a suspended thread *of the same PE* from inside another thread
/// (or handler running on the PE).
pub fn awaken(tid: ThreadId) -> SysResult<()> {
    let sched = current_sched();
    // SAFETY: same-OS-thread access.
    unsafe { (*sched).awaken_tid_raw(tid) }
}

impl Scheduler {
    /// Internal awaken usable while a thread is running (from `awaken`).
    ///
    /// # Safety
    /// Must be called on the scheduler's OS thread.
    unsafe fn awaken_tid_raw(&self, tid: ThreadId) -> SysResult<()> {
        // SAFETY: forwarded; uses raw access like awaken_tid but without
        // constructing &mut Inner that would overlap thread-side access.
        unsafe {
            let inner = self.inner();
            match (*inner).threads.get_mut(&tid) {
                Some(tcb) if tcb.state == ThreadState::Suspended => {
                    tcb.state = ThreadState::Ready;
                    let prio = tcb.priority;
                    (*inner).runq.push(tid, prio);
                    Ok(())
                }
                Some(tcb) => Err(awaken_state_error(tid, tcb.state)),
                None => Err(SysError::logic("awaken", format!("{tid} is not here"))),
            }
        }
    }

    /// Test scaffolding for the sanitizer suite: force a live thread's
    /// state to `Done` so the use-after-exit detector can be exercised
    /// without waiting for the rare real path (a flavor-activation failure
    /// leaves a `Done` control block behind).
    #[doc(hidden)]
    #[cfg(feature = "sanitize")]
    pub fn sanitize_force_done(&self, tid: ThreadId) {
        // SAFETY: single-threaded access between switches.
        let inner = unsafe { &mut *self.inner() };
        if let Some(tcb) = inner.threads.get_mut(&tid) {
            tcb.state = ThreadState::Done;
        }
    }
}

/// Shared failure path for both awaken entry points. Awakening a `Ready`
/// thread is an application-level error (reported, recoverable); awakening
/// a `Running` or `Done` thread means scheduler state itself is wrong, so
/// it is debug-asserted — and, under `sanitize`, trips the corresponding
/// detector before any corrupted bookkeeping can propagate.
fn awaken_state_error(tid: ThreadId, state: ThreadState) -> SysError {
    #[cfg(feature = "sanitize")]
    match state {
        ThreadState::Running => flows_trace::san::trip(
            flows_trace::san::SanCheck::DoubleAwaken,
            "awaken of the currently running thread",
            tid.0,
            0,
        ),
        ThreadState::Done => flows_trace::san::trip(
            flows_trace::san::SanCheck::UseAfterExit,
            "awaken of a thread that already exited",
            tid.0,
            0,
        ),
        _ => {}
    }
    debug_assert!(
        !matches!(state, ThreadState::Running | ThreadState::Done),
        "awaken of {tid} in state {state:?} — scheduler lifecycle bug"
    );
    SysError::logic("awaken", format!("{tid} is {state:?}, not Suspended"))
}

/// The calling thread's accumulated on-CPU time in nanoseconds (excludes
/// the burst currently executing). `None` outside a thread.
pub fn current_load_ns() -> Option<u64> {
    let sched = CURRENT_SCHED.with(|c| c.get());
    if sched.is_null() {
        return None;
    }
    // SAFETY: same-OS-thread read; no reference held across a switch.
    unsafe {
        let inner = (*sched).inner_ptr();
        (*inner).current.map(|tid| (*inner).tracker.get(tid.0))
    }
}

/// Change the calling thread's scheduling priority (takes effect at its
/// next yield). `None` outside a thread.
pub fn set_priority(priority: i32) -> Option<()> {
    with_current_tcb(|tcb| {
        tcb.priority = priority;
    })
}

/// Allocate from the calling thread's migratable (isomalloc) heap — the
/// paper's "override malloc inside the threading context" hook (§3.4.2).
/// Returns `None` outside a thread or for non-isomalloc flavors.
pub fn iso_malloc(size: usize) -> Option<*mut u8> {
    with_current_tcb(|tcb| match &mut tcb.flavor {
        FlavorData::Iso { slab } => slab.malloc(size).ok(),
        _ => None,
    })
    .flatten()
}

/// The calling thread's stack floor (lowest committed stack address), for
/// flavors that own dedicated stack memory — where the sanitizer's canary
/// word lives. `None` outside a thread or on shared-region flavors.
#[cfg(feature = "sanitize")]
pub fn current_stack_floor() -> Option<usize> {
    with_current_tcb(|tcb| match &tcb.flavor {
        FlavorData::Standard { stack } => Some(stack.as_ptr() as usize),
        FlavorData::Iso { slab } => Some(slab.stack_bottom()),
        FlavorData::Alias { binding } => Some(binding.floor),
        _ => None,
    })
    .flatten()
}

/// Free a pointer from [`iso_malloc`]. Returns whether the free succeeded.
pub fn iso_free(ptr: *mut u8) -> bool {
    with_current_tcb(|tcb| match &mut tcb.flavor {
        FlavorData::Iso { slab } => slab.free(ptr).is_ok(),
        _ => false,
    })
    .unwrap_or(false)
}

#[cfg(test)]
mod runq_tests {
    use super::*;

    fn tid(n: u64) -> ThreadId {
        ThreadId(n)
    }

    #[test]
    fn fifo_within_a_priority_lane() {
        let mut q = RunQueue::default();
        for n in 0..16 {
            q.push(tid(n), 0);
        }
        for n in 0..16 {
            assert_eq!(q.pop(), Some(tid(n)), "lane must preserve arrival order");
        }
        assert_eq!(q.pop(), None);
        assert_eq!(q.len(), 0);
    }

    #[test]
    fn lanes_order_by_priority_and_interleave_fifo() {
        let mut q = RunQueue::default();
        q.push(tid(1), 5);
        q.push(tid(2), -3);
        q.push(tid(3), 5);
        q.push(tid(4), -3);
        q.push(tid(5), 0);
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![tid(2), tid(4), tid(5), tid(1), tid(3)]);
    }

    #[test]
    fn overflow_priorities_interleave_with_lanes() {
        let mut q = RunQueue::default();
        q.push(tid(1), 100); // overflow, least urgent
        q.push(tid(2), 0); // lane
        q.push(tid(3), -100); // overflow, most urgent
        q.push(tid(4), -32); // most urgent lane
        q.push(tid(5), 31); // least urgent lane
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(order, vec![tid(3), tid(4), tid(2), tid(5), tid(1)]);
        // FIFO among equal overflow priorities too.
        q.push(tid(6), 200);
        q.push(tid(7), 200);
        assert_eq!(q.pop(), Some(tid(6)));
        assert_eq!(q.pop(), Some(tid(7)));
    }

    #[test]
    fn remove_clears_every_queued_entry() {
        let mut q = RunQueue::default();
        q.push(tid(1), 0);
        q.push(tid(2), 0);
        q.push(tid(1), 7);
        q.push(tid(1), 99); // overflow copy
        q.remove(tid(1));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some(tid(2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn steal_tail_takes_back_half_preserving_victim_fifo() {
        let mut q = RunQueue::default();
        for n in 0..10 {
            q.push(tid(n), 0);
        }
        let stolen = q.steal_tail(64, |_| true);
        // Never more than half the lane, from the back, in arrival order.
        assert_eq!(stolen, (5..10).map(tid).collect::<Vec<_>>());
        assert_eq!(q.len(), 5);
        for n in 0..5 {
            assert_eq!(q.pop(), Some(tid(n)), "victim keeps its FIFO head");
        }
    }

    #[test]
    fn steal_tail_skips_unstealable_entries() {
        let mut q = RunQueue::default();
        for n in 0..8 {
            q.push(tid(n), 0);
        }
        // Only even tids may travel; odd ones stay, order intact.
        let stolen = q.steal_tail(3, |t| t.0 % 2 == 0);
        assert_eq!(stolen, vec![tid(2), tid(4), tid(6)]);
        let left: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(left, vec![tid(0), tid(1), tid(3), tid(5), tid(7)]);
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// The victim-side ordering invariant: whatever the queue holds
        /// and whatever the steal quota and stealability filter, a tail
        /// steal must leave every lane's remaining entries in their
        /// original relative order, take only filter-approved entries
        /// from one lane, and keep the bookkeeping (`len`, popability)
        /// exact.
        #[test]
        fn steal_tail_never_reorders_the_victims_remainder(
            pushes in proptest::collection::vec((0u64..64, -3i32..4), 0..48),
            max in 0usize..40,
            keep_mask in proptest::prelude::any::<u64>(),
        ) {
            use proptest::prelude::prop_assert;
            use proptest::prelude::prop_assert_eq;
            let mut q = RunQueue::default();
            // Distinct tids: index * 64 + tid-seed keeps them unique while
            // the seed still controls stealability below.
            let entries: Vec<(ThreadId, i32)> = pushes
                .iter()
                .enumerate()
                .map(|(i, &(t, p))| (ThreadId((i as u64) << 6 | t), p))
                .collect();
            for &(t, p) in &entries {
                q.push(t, p);
            }
            let stealable = |t: ThreadId| keep_mask & (1 << (t.0 & 63)) != 0;
            let stolen = q.steal_tail(max, stealable);
            // Steals come from exactly one lane, filter-approved only.
            prop_assert!(stolen.iter().all(|&t| stealable(t)));
            let lanes_of: std::collections::HashSet<i32> = stolen
                .iter()
                .map(|s| entries.iter().find(|(t, _)| t == s).unwrap().1)
                .collect();
            prop_assert!(lanes_of.len() <= 1, "one donation, one lane");
            prop_assert_eq!(q.len(), entries.len() - stolen.len());
            // Remaining entries pop in priority order, and *within every
            // lane* in their original arrival order.
            let popped: Vec<ThreadId> = std::iter::from_fn(|| q.pop()).collect();
            prop_assert_eq!(popped.len(), entries.len() - stolen.len());
            for lane in -3i32..4 {
                let original: Vec<ThreadId> = entries
                    .iter()
                    .filter(|&&(_, p)| p == lane)
                    .map(|&(t, _)| t)
                    .collect();
                let remaining: Vec<ThreadId> = popped
                    .iter()
                    .copied()
                    .filter(|t| original.contains(t))
                    .collect();
                let expect: Vec<ThreadId> = original
                    .iter()
                    .copied()
                    .filter(|t| !stolen.contains(t))
                    .collect();
                prop_assert_eq!(
                    remaining, expect,
                    "lane {} must keep arrival order", lane
                );
            }
            // Stolen entries preserve arrival order too (the thief's lane
            // receives them oldest-first).
            if let Some(&lane) = lanes_of.iter().next() {
                let original: Vec<ThreadId> = entries
                    .iter()
                    .filter(|&&(_, p)| p == lane)
                    .map(|&(t, _)| t)
                    .collect();
                let expect: Vec<ThreadId> = original
                    .iter()
                    .copied()
                    .filter(|t| stolen.contains(t))
                    .collect();
                prop_assert_eq!(stolen, expect);
            }
        }
    }

    #[test]
    fn steal_tail_targets_longest_lane_and_spares_overflow() {
        let mut q = RunQueue::default();
        q.push(tid(1), -5); // urgent lane, length 1: quota 0
        for n in 10..16 {
            q.push(tid(n), 3); // longest lane
        }
        q.push(tid(99), 500); // overflow heap is never stealable
        let stolen = q.steal_tail(64, |_| true);
        assert_eq!(stolen, vec![tid(13), tid(14), tid(15)]);
        assert_eq!(q.len(), 5);
        // A single-entry lane yields nothing (quota = len/2 = 0).
        let mut solo = RunQueue::default();
        solo.push(tid(7), 0);
        assert!(solo.steal_tail(64, |_| true).is_empty());
        assert_eq!(solo.pop(), Some(tid(7)));
    }
}
