//! Process-wide memory pools shared by every PE's scheduler.
//!
//! Isomalloc slots are carved per-PE from one region. The stack-copy
//! scheme shares one *common address*, so (as the paper notes, §3.4.1)
//! only one such thread may be running per address space — enforced with
//! a process-wide lock the scheduler holds exactly while such a thread is
//! on the CPU. Memory-alias threads used to share that restriction
//! (§3.4.3's single common window); they now get private windows from a
//! per-PE range, so any number run concurrently and the alias pool's lock
//! is taken only on bind/retire/migrate — never on a context switch.
//!
//! Exited isomalloc slabs and alias windows park in machine-wide reclaim
//! caches ([`flows_mem::SlabCache`], the alias pool's warm lists) rather
//! than being torn down inline; `Scheduler::flush_reclaim` drains them at
//! idle.

use crate::payload::PayloadPool;
use crate::steal::StealMesh;
use flows_mem::{AliasStackPool, CopyStackPool, IsoConfig, IsoRegion, SlabCache};
use flows_sys::SysResult;
use parking_lot::Mutex;
use std::sync::Arc;

/// Default committed stack bytes for migratable threads (64 KiB).
pub const DEFAULT_STACK_LEN: usize = 64 * 1024;

/// Default common-region / frame length for copy and alias stacks.
pub const DEFAULT_COMMON_LEN: usize = 1 << 20;

/// The process-wide ("machine-wide" in the simulated machine) memory
/// substrate: the isomalloc region plus the single copy-stack region and
/// alias-stack window.
pub struct SharedPools {
    region: Arc<IsoRegion>,
    alias: Mutex<AliasStackPool>,
    copy: Mutex<CopyStackPool>,
    slab_cache: Mutex<SlabCache>,
    payload: Vec<Arc<PayloadPool>>,
    steal: StealMesh,
}

impl std::fmt::Debug for SharedPools {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedPools")
            .field("region", &self.region)
            .finish()
    }
}

impl SharedPools {
    /// Build pools for a machine of `num_pes` PEs with the given isomalloc
    /// layout and common-region length.
    pub fn new(iso: IsoConfig, common_len: usize) -> SysResult<Arc<SharedPools>> {
        let num_pes = iso.num_pes.max(1);
        // Alias windows mirror the isomalloc layout: each PE gets as many
        // private windows as it has slots, so the two migratable flavors
        // hit capacity limits together.
        let windows_per_pe = iso.slots_per_pe.max(1);
        Ok(Arc::new(SharedPools {
            region: IsoRegion::new(iso)?,
            alias: Mutex::new(AliasStackPool::new_windowed(
                common_len,
                num_pes,
                windows_per_pe,
                4,
            )?),
            copy: Mutex::new(CopyStackPool::new(common_len)?),
            slab_cache: Mutex::new(SlabCache::new(num_pes)),
            payload: (0..num_pes).map(|_| PayloadPool::with_defaults()).collect(),
            steal: StealMesh::new(num_pes),
        }))
    }

    /// Pools for a small test machine (2 PEs, kernel-chosen region base so
    /// parallel test binaries never collide).
    pub fn new_for_tests() -> Arc<SharedPools> {
        let mut cfg = IsoConfig::for_pes(2);
        cfg.base = 0; // anywhere
        cfg.slots_per_pe = 64;
        Self::new(cfg, 256 * 1024).expect("test pools")
    }

    /// The machine-wide isomalloc region.
    pub fn region(&self) -> &Arc<IsoRegion> {
        &self.region
    }

    /// The memory-alias pool. The lock guards bind/retire/migrate
    /// bookkeeping only; running alias threads never take it.
    pub fn alias(&self) -> &Mutex<AliasStackPool> {
        &self.alias
    }

    /// The machine-wide cache of exited isomalloc slabs awaiting reuse or
    /// batched reclaim.
    pub fn slab_cache(&self) -> &Mutex<SlabCache> {
        &self.slab_cache
    }

    /// Override both reclaim high-water marks (alias warm lists and the
    /// slab cache); `0` forces eager reclaim, as under `sanitize`.
    pub fn set_reclaim_high_water(&self, n: usize) {
        self.alias.lock().set_high_water(n);
        self.slab_cache.lock().set_high_water(n);
    }

    /// The stack-copy pool (process-wide lock).
    pub fn copy(&self) -> &Mutex<CopyStackPool> {
        &self.copy
    }

    /// The work-stealing coordination mesh (published loads, request
    /// words, donation inboxes).
    pub fn steal(&self) -> &StealMesh {
        &self.steal
    }

    /// The message-payload recycling pool of PE `pe` (clamped, so a
    /// machine built for fewer PEs than callers assume still works).
    pub fn payload_pool(&self, pe: usize) -> &Arc<PayloadPool> {
        &self.payload[pe.min(self.payload.len() - 1)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_construct_and_expose_parts() {
        let p = SharedPools::new_for_tests();
        assert_eq!(p.region().cfg().num_pes, 2);
        assert!(p.alias().lock().frame_len() > 0);
        assert!(!p.copy().lock().is_empty());
        assert_eq!(p.payload_pool(0).stats().allocs, 0);
        // Out-of-range PEs clamp rather than panic.
        let _ = p.payload_pool(99);
    }
}
