//! Machine-level tests of the location layer and reductions.

use flows_comm::{
    contribute, migrate_obj_in, migrate_obj_out, register_obj, route, set_delivery,
    set_reduction_sink, CommLayer, ObjId, ReduceOp,
};
use flows_converse::{MachineBuilder, NetModel};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

fn machine(pes: usize) -> (MachineBuilder, CommLayer) {
    let mut mb = MachineBuilder::new(pes).net_model(NetModel::zero());
    let layer = CommLayer::register(&mut mb);
    (mb, layer)
}

/// Deliveries recorded as (pe, obj, first-byte).
type Log = Arc<Mutex<Vec<(usize, u64, u8)>>>;

fn recording_delivery(
    log: &Log,
) -> impl Fn(&flows_converse::Pe, ObjId, flows_converse::Payload) + Clone + 'static {
    let log = log.clone();
    move |pe, obj, data| {
        log.lock()
            .unwrap()
            .push((pe.id(), obj.0, data.first().copied().unwrap_or(0)));
    }
}

#[test]
fn route_to_registered_object() {
    let (mb, _layer) = machine(3);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let d = recording_delivery(&log);
    mb.run_deterministic(move |pe| {
        set_delivery(pe, 0, d.clone());
        if pe.id() == 1 {
            register_obj(pe, ObjId(10));
        }
        if pe.id() == 2 {
            // Sent before PE2 knows anything: routes via home (PE 10%3=1,
            // which is also where it lives).
            route(pe, ObjId(10), 0, vec![42]);
        }
    });
    assert_eq!(*log.lock().unwrap(), vec![(1, 10, 42)]);
}

#[test]
fn messages_sent_before_registration_are_buffered_at_home() {
    let (mut mb, _layer) = machine(2);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let d = recording_delivery(&log);
    // Object 4's home is PE0; it registers on PE1 only after a message is
    // already buffered at the home.
    let late = Arc::new(AtomicU64::new(0));
    let late2 = late.clone();
    let reg = mb.handler(move |pe, _msg| {
        register_obj(pe, ObjId(4));
        late2.fetch_add(1, Ordering::Relaxed);
    });
    let d3 = d.clone();
    mb.run_deterministic(move |pe| {
        set_delivery(pe, 0, d3.clone());
        if pe.id() == 0 {
            route(pe, ObjId(4), 0, vec![7]); // buffered: nobody has it yet
            pe.send(1, reg, vec![]); // now PE1 registers it
        }
    });
    assert_eq!(late.load(Ordering::Relaxed), 1);
    assert_eq!(*log.lock().unwrap(), vec![(1, 4, 7)]);
}

#[test]
fn migration_forwards_and_updates_home() {
    // Object lives on PE2, then migrates to PE0. Another PE with a stale
    // view sends concurrently; the message must arrive exactly once.
    let (mut mb, _layer) = machine(3);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let d = recording_delivery(&log);

    let obj = ObjId(5); // home = 5 % 3 = 2
    let arrive = mb.handler(move |pe, _msg| {
        migrate_obj_in(pe, obj);
    });
    let depart = mb.handler(move |pe, _msg| {
        migrate_obj_out(pe, obj, 0);
        pe.send(0, arrive, vec![]);
    });
    let poke = mb.handler(move |pe, _msg| {
        // PE1 sends with whatever (possibly stale) knowledge it has.
        route(pe, obj, 0, vec![9]);
    });
    let d2 = d.clone();
    mb.run_deterministic(move |pe| {
        set_delivery(pe, 0, d2.clone());
        if pe.id() == 2 {
            register_obj(pe, obj);
            route(pe, obj, 0, vec![1]); // delivered locally on PE2
            pe.send(2, depart, vec![]);
        }
        if pe.id() == 1 {
            pe.send(1, poke, vec![]); // concurrent with migration
        }
    });
    let log = log.lock().unwrap();
    // First delivery on PE2; the poked message exactly once (on PE2 before
    // departure or PE0 after arrival); no duplicates.
    assert!(log.contains(&(2, 5, 1)), "log: {log:?}");
    let nines: Vec<_> = log.iter().filter(|e| e.2 == 9).collect();
    assert_eq!(nines.len(), 1, "exactly-once delivery: {log:?}");
    assert_eq!(log.len(), 2);
}

#[test]
fn routed_messages_after_migration_reach_new_home_directly() {
    let (mut mb, _layer) = machine(4);
    let log: Log = Arc::new(Mutex::new(Vec::new()));
    let d = recording_delivery(&log);
    let obj = ObjId(8); // home = 0
    let arrive = mb.handler(move |pe, _| migrate_obj_in(pe, obj));
    let depart = mb.handler(move |pe, _| {
        migrate_obj_out(pe, obj, 3);
        pe.send(3, arrive, vec![]);
    });
    let send_late = mb.handler(move |pe, _| route(pe, obj, 0, vec![2]));
    let d2 = d.clone();
    mb.run_deterministic(move |pe| {
        set_delivery(pe, 0, d2.clone());
        if pe.id() == 1 {
            register_obj(pe, obj);
            pe.send(1, depart, vec![]);
        }
        if pe.id() == 2 {
            pe.send(2, send_late, vec![]);
        }
    });
    let log = log.lock().unwrap();
    let twos: Vec<_> = log.iter().filter(|e| e.2 == 2).collect();
    assert_eq!(twos.len(), 1, "{log:?}");
}

#[test]
fn reductions_complete_with_correct_values() {
    let (mut mb, _layer) = machine(3);
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();
    let contribute_all = mb.handler(move |pe, _| {
        // Every PE contributes rank=pe with value pe+1 to tag 0 seq 0.
        contribute(
            pe,
            0,
            0,
            pe.id() as u64,
            ReduceOp::SumF64,
            3,
            ((pe.id() + 1) as f64).to_le_bytes().to_vec(),
        );
    });
    mb.run_deterministic(move |pe| {
        let r3 = r2.clone();
        set_reduction_sink(pe, move |_pe, red| {
            let v = f64::from_le_bytes(red.data[..8].try_into().unwrap());
            r3.lock().unwrap().push((red.tag, red.seq, v));
        });
        pe.send(pe.id(), contribute_all, vec![]);
    });
    let results = results.lock().unwrap();
    assert_eq!(*results, vec![(0, 0, 6.0)], "1+2+3");
}

#[test]
fn gather_orders_by_rank() {
    let (mut mb, _layer) = machine(4);
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();
    let go = mb.handler(move |pe, _| {
        // Contribute out of order: rank = 3 - pe.
        let rank = (3 - pe.id()) as u64;
        contribute(pe, 1, 7, rank, ReduceOp::Concat, 4, vec![rank as u8]);
    });
    mb.run_deterministic(move |pe| {
        let r3 = r2.clone();
        set_reduction_sink(pe, move |_pe, red| {
            r3.lock().unwrap().push(red.data.clone());
        });
        pe.send(pe.id(), go, vec![]);
    });
    assert_eq!(*results.lock().unwrap(), vec![vec![0u8, 1, 2, 3]]);
}

#[test]
fn interleaved_reduction_sequences_do_not_mix() {
    let (mut mb, _layer) = machine(2);
    let results = Arc::new(Mutex::new(Vec::new()));
    let r2 = results.clone();
    let go = mb.handler(move |pe, _| {
        for seq in 0..3u64 {
            contribute(
                pe,
                0,
                seq,
                pe.id() as u64,
                ReduceOp::SumU64,
                2,
                (seq * 10 + pe.id() as u64).to_le_bytes().to_vec(),
            );
        }
    });
    mb.run_deterministic(move |pe| {
        let r3 = r2.clone();
        set_reduction_sink(pe, move |_pe, red| {
            let v = u64::from_le_bytes(red.data[..8].try_into().unwrap());
            r3.lock().unwrap().push((red.seq, v));
        });
        pe.send(pe.id(), go, vec![]);
    });
    let mut got = results.lock().unwrap().clone();
    got.sort();
    assert_eq!(got, vec![(0, 1), (1, 21), (2, 41)]);
}
