//! Object location management: registration, routing, forwarding,
//! buffering, migration notices.

use flows_converse::{HandlerId, MachineBuilder, Message, Payload, Pe};
use flows_pup::{pup_fields, Pup};
use std::collections::{HashMap, HashSet, VecDeque};
use std::rc::Rc;
use std::sync::OnceLock;

/// Location-independent endpoint identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct ObjId(pub u64);

impl ObjId {
    /// The PE that maintains this object's authoritative location.
    pub fn home(self, num_pes: usize) -> usize {
        (self.0 % num_pes as u64) as usize
    }
}

/// The PE that maintains `obj`'s authoritative location, skipping PEs the
/// runtime has confirmed dead: an object homed on a casualty is re-homed
/// deterministically onto a survivor. Every PE computes the same map from
/// the machine-shared confirmed mask, so no agreement round is needed.
/// With no failures this is exactly [`ObjId::home`].
pub fn live_home(pe: &Pe, obj: ObjId) -> usize {
    live_map(pe, obj.0)
}

/// Deterministic `key -> live PE` map (see [`live_home`]); also used by
/// reductions to re-root streams whose root died.
pub(crate) fn live_map(pe: &Pe, key: u64) -> usize {
    let n = pe.num_pes();
    let naive = (key % n as u64) as usize;
    let mask = pe.confirmed_dead_mask();
    if mask & (1 << naive) == 0 {
        return naive;
    }
    let live: Vec<usize> = (0..n).filter(|&p| mask & (1 << p) == 0).collect();
    assert!(!live.is_empty(), "every PE is confirmed dead");
    live[(key % live.len() as u64) as usize]
}

/// Drop every location-cache entry claiming an object lives on `dead`.
/// Called by the recovery driver after a death is confirmed: the entries
/// are not merely stale, they point at a PE that will never forward again,
/// so routing must fall back to the (re-homed) authoritative home until
/// the respawned objects re-register. Returns how many entries were
/// purged.
pub fn purge_dead_locations(pe: &Pe, dead: usize) -> usize {
    pe.ext::<CommState, _>(|st| {
        let before = st.locations.len();
        st.locations.retain(|_, loc| *loc != dead);
        before - st.locations.len()
    })
}

impl Pup for ObjId {
    fn pup(&mut self, p: &mut flows_pup::Puper) {
        self.0.pup(p);
    }
}

/// Routing header. On the wire a routed message is this header PUP-packed
/// followed by the *raw* application payload — no length prefix, no
/// re-encoding: the receiver parses the header with `from_bytes_prefix`
/// and takes the rest as a zero-copy [`Payload`] slice.
#[derive(Debug, Default, Clone, Copy, PartialEq)]
struct RouteHdr {
    obj: ObjId,
    port: u8,
    hops: u32,
    /// Set once the hop budget is exhausted: the message is pinned to the
    /// object's home, which must buffer it rather than forward again.
    pinned: u8,
}
pup_fields!(RouteHdr { obj, port, hops, pinned });

/// Build the wire image of a routed message in a pooled buffer.
fn route_wire(pe: &Pe, hdr: &mut RouteHdr, payload: &[u8]) -> Payload {
    // Header is 14 fixed bytes (u64 + u8 + u32 + u8).
    let mut buf = pe.payload_buf_with_capacity(14 + payload.len());
    flows_pup::pack_into(hdr, buf.vec_mut());
    buf.extend_from_slice(payload);
    buf.freeze()
}

/// Maximum forwarding hops before a message is pinned to its home PE. A
/// healthy machine resolves any location in a handful of hops; a budget of
/// `2 * num_pes + 4` tolerates a full stale-cache chain plus migration
/// races without letting a cyclic cache bounce a message forever.
pub fn max_route_hops(num_pes: usize) -> u32 {
    2 * num_pes as u32 + 4
}

/// One hop-budget overflow event (diagnostics; see [`route_overflows`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteOverflow {
    /// The object whose routing exceeded the hop budget.
    pub obj: ObjId,
    /// Hops accumulated when the budget tripped.
    pub hops: u32,
}

#[derive(Debug, Default, Clone, PartialEq)]
struct UpdateMsg {
    obj: ObjId,
    pe: u64,
    /// Sender's rollback epoch. A location update that was in flight when
    /// a recovery rolled the world back describes a placement that no
    /// longer exists; accepting it after the respawned object re-registers
    /// would wedge the home on a stale location forever.
    epoch: u64,
}
pup_fields!(UpdateMsg { obj, pe, epoch });

type DeliveryFn = Rc<dyn Fn(&Pe, ObjId, Payload)>;

/// Subsystem *port*: distinguishes the layers multiplexed over one routed
/// object space (chare arrays, AMPI, applications...).
pub type Port = u8;

/// Per-PE location tables (lives in the PE's extension slots).
#[derive(Default)]
pub(crate) struct CommState {
    local: HashSet<ObjId>,
    /// Best known location per object (authoritative on the home PE).
    locations: HashMap<ObjId, usize>,
    /// Messages parked at the home (or at the destination) until the
    /// object (re)appears. Parked payloads share the arrived bytes.
    buffered: HashMap<ObjId, VecDeque<(Port, Payload)>>,
    delivery: HashMap<Port, DeliveryFn>,
    /// Hop-budget overflows observed on this PE (surfaced, not fatal).
    overflows: Vec<RouteOverflow>,
    /// This PE's rollback epoch (0 until a recovery bumps it). Stamped on
    /// location updates and reduction contributions; older stamps are
    /// dropped on receipt — the layer's half of the replay guard.
    epoch: u64,
}

/// Handler ids of the communication layer, shared by every PE.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CommIds {
    pub route: HandlerId,
    pub update: HandlerId,
    pub contrib: HandlerId,
}

static IDS: OnceLock<CommIds> = OnceLock::new();

pub(crate) fn ids() -> CommIds {
    *IDS.get()
        .expect("CommLayer::register must run before using flows-comm")
}

/// The communication layer: register once on the machine builder.
#[derive(Debug, Clone, Copy)]
pub struct CommLayer {
    /// Routing handler id (exposed for diagnostics).
    pub route: HandlerId,
}

impl CommLayer {
    /// Register the layer's handlers. Call exactly once per process,
    /// before any machine using flows-comm runs. (Machines in one process
    /// share the handler table shape, mirroring Converse's static handler
    /// registration.)
    pub fn register(mb: &mut MachineBuilder) -> CommLayer {
        let route = mb.handler(on_route);
        let update = mb.handler(on_update);
        let contrib = mb.handler(crate::reduce::on_contrib);
        let ids = CommIds {
            route,
            update,
            contrib,
        };
        let stored = *IDS.get_or_init(|| ids);
        assert_eq!(
            (stored.route, stored.update, stored.contrib),
            (ids.route, ids.update, ids.contrib),
            "CommLayer must be registered at the same handler slots in \
             every machine of this process (register it first)"
        );
        CommLayer { route }
    }
}

fn on_route(pe: &Pe, msg: Message) {
    let (hdr, used) = flows_pup::from_bytes_prefix::<RouteHdr>(&msg.data).expect("route wire");
    // The application payload is the tail of the arrived bytes — a
    // zero-copy view, shared with whatever the link layer still holds.
    let payload = msg.data.slice_from(used);
    route_inner(pe, hdr, payload, Some(msg.src_pe));
}

fn on_update(pe: &Pe, msg: Message) {
    let m: UpdateMsg = flows_pup::from_bytes(&msg.data).expect("update wire");
    let flushed = pe.ext::<CommState, _>(|st| {
        if m.epoch < st.epoch {
            // Stale: sent before the last rollback. The placement it
            // describes was erased by the recovery.
            return VecDeque::new();
        }
        st.locations.insert(m.obj, m.pe as usize);
        st.buffered.remove(&m.obj).unwrap_or_default()
    });
    for (port, payload) in flushed {
        route(pe, m.obj, port, payload);
    }
}

fn route_inner(pe: &Pe, mut hdr: RouteHdr, payload: Payload, came_from: Option<usize>) {
    let me = pe.id();
    let num = pe.num_pes();
    // Home resolution skips confirmed-dead PEs (identity map while the
    // machine is healthy).
    let home = live_home(pe, hdr.obj);
    if hdr.pinned == 0 && hdr.hops > max_route_hops(num) {
        // Cyclic or endlessly stale location caches: stop chasing. Record
        // the overflow, drop our (evidently bad) cache entry, and pin the
        // message to the object's home, which buffers it until the next
        // authoritative location update flushes it.
        pe.ext::<CommState, _>(|st| {
            st.overflows.push(RouteOverflow {
                obj: hdr.obj,
                hops: hdr.hops,
            });
            st.locations.remove(&hdr.obj);
        });
        hdr.pinned = 1;
        if home != me {
            hdr.hops += 1;
            pe.send(home, ids().route, route_wire(pe, &mut hdr, &payload));
            return;
        }
    }
    enum Action {
        Deliver(DeliveryFn),
        Forward(usize),
        Buffered,
    }
    let pinned = hdr.pinned != 0;
    let action = pe.ext::<CommState, _>(|st| {
        // Buffering parks a clone of the payload view (an `Arc` bump).
        if st.local.contains(&hdr.obj) {
            Action::Deliver(
                st.delivery
                    .get(&hdr.port)
                    .unwrap_or_else(|| {
                        panic!("no delivery installed for port {} on PE {me}", hdr.port)
                    })
                    .clone(),
            )
        } else if pinned {
            // Pinned to home: never forward again; wait for the next
            // location update to flush us.
            st.buffered
                .entry(hdr.obj)
                .or_default()
                .push_back((hdr.port, payload.clone()));
            Action::Buffered
        } else if let Some(&loc) = st.locations.get(&hdr.obj) {
            if loc == me {
                // Stale self-reference: the object left without a trace —
                // treat as unknown, buffer if home.
                if home == me {
                    st.buffered
                        .entry(hdr.obj)
                        .or_default()
                        .push_back((hdr.port, payload.clone()));
                    Action::Buffered
                } else {
                    Action::Forward(home)
                }
            } else {
                Action::Forward(loc)
            }
        } else if home == me {
            st.buffered
                .entry(hdr.obj)
                .or_default()
                .push_back((hdr.port, payload.clone()));
            Action::Buffered
        } else {
            Action::Forward(home)
        }
    });
    match action {
        Action::Deliver(f) => f(pe, hdr.obj, payload),
        Action::Forward(dest) => {
            // Teach the stale sender where the object went, so its future
            // sends go direct instead of detouring through us forever —
            // the location-cache update of the paper's comm layer [28].
            if let Some(src) = came_from {
                if src != me && src != dest {
                    let mut u = UpdateMsg {
                        obj: hdr.obj,
                        pe: dest as u64,
                        epoch: comm_epoch(pe),
                    };
                    pe.send(src, ids().update, pe.pack_payload(&mut u));
                }
            }
            hdr.hops += 1;
            pe.send(dest, ids().route, route_wire(pe, &mut hdr, &payload));
        }
        Action::Buffered => {}
    }
}

/// Install this PE's delivery callback for `port` (invoked for every
/// payload routed on that port to a locally resident object). Must be set
/// once per (PE, port) before messages arrive. The delivered [`Payload`]
/// is a zero-copy view of the arrived bytes.
pub fn set_delivery(pe: &Pe, port: Port, f: impl Fn(&Pe, ObjId, Payload) + 'static) {
    pe.ext::<CommState, _>(|st| {
        let prev = st.delivery.insert(port, Rc::new(f));
        assert!(prev.is_none(), "delivery already set for port {port} on this PE");
    });
}

/// Register a newly created object as living on this PE and notify its
/// home.
pub fn register_obj(pe: &Pe, obj: ObjId) {
    let me = pe.id();
    pe.ext::<CommState, _>(|st| {
        st.local.insert(obj);
        st.locations.insert(obj, me);
    });
    notify_home(pe, obj, me);
}

/// Record that `obj` is leaving this PE for `dest` (call before shipping
/// the packed thread/object). Later arrivals here are forwarded.
pub fn migrate_obj_out(pe: &Pe, obj: ObjId, dest: usize) {
    pe.ext::<CommState, _>(|st| {
        st.local.remove(&obj);
        st.locations.insert(obj, dest);
    });
    notify_home(pe, obj, dest);
}

/// Record that `obj` has arrived on this PE (call after unpacking).
/// Flushes anything buffered here and re-points the home.
pub fn migrate_obj_in(pe: &Pe, obj: ObjId) {
    let me = pe.id();
    let flushed = pe.ext::<CommState, _>(|st| {
        st.local.insert(obj);
        st.locations.insert(obj, me);
        st.buffered.remove(&obj).unwrap_or_default()
    });
    notify_home(pe, obj, me);
    for (port, payload) in flushed {
        route(pe, obj, port, payload);
    }
}

fn notify_home(pe: &Pe, obj: ObjId, loc: usize) {
    let home = live_home(pe, obj);
    if home != pe.id() {
        let mut m = UpdateMsg {
            obj,
            pe: loc as u64,
            epoch: comm_epoch(pe),
        };
        pe.send(home, ids().update, pe.pack_payload(&mut m));
    } else {
        // We are the home: flush anything parked for the object.
        let flushed = pe.ext::<CommState, _>(|st| {
            st.locations.insert(obj, loc);
            st.buffered.remove(&obj).unwrap_or_default()
        });
        for (port, payload) in flushed {
            route(pe, obj, port, payload);
        }
    }
}

/// Send `payload` to `obj` on `port`, wherever the object lives.
///
/// Always enqueues (even for locally resident objects) rather than
/// delivering inline: a delivery callback may itself `route`, and inline
/// delivery would re-enter the destination object while the sender is
/// still borrowed — the classic event-driven re-entrancy hazard. One hop
/// through the PE's local queue keeps every delivery top-level.
pub fn route(pe: &Pe, obj: ObjId, port: Port, payload: impl Into<Payload>) {
    let payload = payload.into();
    let mut hdr = RouteHdr {
        obj,
        port,
        hops: 0,
        pinned: 0,
    };
    pe.send(pe.id(), ids().route, route_wire(pe, &mut hdr, &payload));
}

/// Convenience wrapper over [`route`] using the calling context's PE.
pub fn route_from_here(obj: ObjId, port: Port, payload: impl Into<Payload>) {
    flows_converse::with_pe(|pe| route(pe, obj, port, payload));
}

/// Raise this PE's rollback epoch (monotonic; lower values are ignored).
/// The recovery driver calls this on every survivor at rollback, *before*
/// any respawned object re-registers: from then on, location updates and
/// reduction contributions stamped with an older epoch — i.e. sent before
/// the rollback and still in flight — are dropped on receipt instead of
/// resurrecting pre-rollback state.
pub fn set_comm_epoch(pe: &Pe, epoch: u64) {
    pe.ext::<CommState, _>(|st| st.epoch = st.epoch.max(epoch));
}

/// This PE's current rollback epoch (0 on a machine that never recovered).
pub fn comm_epoch(pe: &Pe) -> u64 {
    pe.ext::<CommState, _>(|st| st.epoch)
}

/// Forget `obj` entirely on this PE: no longer local, no cached location.
/// Used by recovery rollback — the object's threads are being discarded
/// and will re-register (possibly elsewhere) at respawn. Anything already
/// buffered for the object is kept: it flushes when the object returns.
/// Traffic arriving meanwhile falls back to the home PE and parks there.
pub fn evict_obj(pe: &Pe, obj: ObjId) {
    pe.ext::<CommState, _>(|st| {
        st.local.remove(&obj);
        st.locations.remove(&obj);
    });
}

/// Number of messages parked here for `obj` (diagnostics/tests).
pub fn buffered_count(pe: &Pe, obj: ObjId) -> usize {
    pe.ext::<CommState, _>(|st| st.buffered.get(&obj).map(|q| q.len()).unwrap_or(0))
}

/// Hop-budget overflow events recorded on this PE. A non-empty list means
/// some message chased stale location caches past [`max_route_hops`] and
/// was pinned to its home PE (still delivered once the location resolved,
/// but worth investigating).
pub fn route_overflows(pe: &Pe) -> Vec<RouteOverflow> {
    pe.ext::<CommState, _>(|st| st.overflows.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// Fabricate a cyclic location cache (PE0 and PE1 each think the other
    /// has the object, which actually lives nowhere yet) and check the hop
    /// budget pins the message at its home instead of bouncing forever —
    /// then that a late registration still gets it delivered.
    #[test]
    fn cyclic_stale_caches_hit_the_hop_bound_not_a_panic() {
        let obj = ObjId(2); // home = PE0 on a 2-PE machine
        let delivered = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(2);
        let _comm = CommLayer::register(&mut mb);
        let delivered2 = delivered.clone();
        let overflow_seen = Arc::new(AtomicU64::new(0));
        let overflow_seen2 = overflow_seen.clone();
        // A probe that bounces between the PEs (a self-send loop would
        // starve the receive queue): once PE0 sees the message parked, the
        // object finally registers there and the buffer must flush to it.
        let probe = mb.handler(move |pe, msg| {
            if pe.id() != 0 {
                pe.send(0, msg.handler, Vec::new());
                return;
            }
            let ovf = route_overflows(pe);
            if !ovf.is_empty() && buffered_count(pe, ObjId(2)) > 0 {
                overflow_seen2.fetch_add(ovf.len() as u64, Ordering::Relaxed);
                register_obj(pe, ObjId(2));
            } else {
                // Not pinned yet: keep probing via the other PE.
                pe.send(1, msg.handler, Vec::new());
            }
        });
        mb.run_deterministic(move |pe| {
            let d = delivered2.clone();
            set_delivery(pe, 9, move |_pe, o, payload| {
                assert_eq!(o, obj);
                assert_eq!(payload, b"stubborn".to_vec());
                d.fetch_add(1, Ordering::Relaxed);
            });
            // Poison the caches to form a cycle.
            pe.ext::<CommState, _>(|st| {
                st.locations.insert(obj, 1 - pe.id());
            });
            if pe.id() == 1 {
                route(pe, obj, 9, b"stubborn".to_vec());
            }
            if pe.id() == 0 {
                pe.send(0, probe, Vec::new());
            }
        });
        assert_eq!(delivered.load(Ordering::Relaxed), 1, "message not lost");
        assert!(overflow_seen.load(Ordering::Relaxed) > 0, "overflow surfaced");
    }

    #[test]
    fn hop_budget_scales_with_machine_size() {
        assert_eq!(max_route_hops(1), 6);
        assert_eq!(max_route_hops(16), 36);
    }
}
