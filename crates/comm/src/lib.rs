//! # flows-comm — location-independent communication
//!
//! The paper's migratable entities "only communicate via the communication
//! sub-system, which provides location-independent communication that
//! supports migration at any time" (§3.1.2, ref [28]). This crate is that
//! subsystem for our machine:
//!
//! * every endpoint is an [`ObjId`] with a *home PE* (`id mod num_pes`)
//!   that maintains its authoritative location;
//! * [`route`] delivers a payload to an object wherever it currently
//!   lives: locally, via a cached location, or via the home PE, with
//!   forwarding and buffering while the object is in flight;
//! * [`contribute`] implements migration-tolerant reductions: every
//!   contribution is tagged with its (tag, seq, rank) and collected at a
//!   fixed root, so a rank may migrate mid-reduction without any protocol
//!   distress — the basis for AMPI's barrier/reduce/allreduce.
//!
//! The layer is registered on a [`flows_converse::MachineBuilder`] before
//! the machine runs ([`CommLayer::register`]); each PE then installs its
//! delivery callback with [`set_delivery`].

#![warn(missing_docs)]

pub mod layer;
pub mod reduce;

pub use layer::{
    buffered_count, comm_epoch, evict_obj, live_home, max_route_hops, migrate_obj_in,
    migrate_obj_out, purge_dead_locations, register_obj, route, route_from_here, route_overflows,
    set_comm_epoch, set_delivery, CommLayer, ObjId, Port, RouteOverflow,
};
pub use reduce::{
    contribute, duplicate_contributions, live_root_of, purge_pending, set_reduction_sink,
    stale_contributions, ReduceOp, Reduction,
};
