//! Migration-tolerant reductions.
//!
//! Every participant contributes a value tagged `(tag, seq, rank)`; the
//! reduction root (a fixed PE derived from the tag) folds contributions
//! and hands the finished result to the PE's *reduction sink*. Because
//! contributions are addressed to a fixed PE and identified by rank, a
//! participant may migrate at any moment — even between contributing and
//! the reduction finishing — without the protocol noticing (§3.1.2).

use flows_converse::{Message, Pe};
use flows_pup::pup_fields;
use std::cell::OnceCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Combining operation applied elementwise to the byte payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum of little-endian `f64` vectors.
    SumF64,
    /// Elementwise sum of little-endian `u64` vectors.
    SumU64,
    /// Elementwise max of little-endian `f64` vectors.
    MaxF64,
    /// Elementwise min of little-endian `f64` vectors.
    MinF64,
    /// Concatenate payloads in rank order (gather).
    Concat,
}

impl ReduceOp {
    fn tag(self) -> u8 {
        match self {
            ReduceOp::SumF64 => 0,
            ReduceOp::SumU64 => 1,
            ReduceOp::MaxF64 => 2,
            ReduceOp::MinF64 => 3,
            ReduceOp::Concat => 4,
        }
    }

    fn from_tag(t: u8) -> ReduceOp {
        match t {
            0 => ReduceOp::SumF64,
            1 => ReduceOp::SumU64,
            2 => ReduceOp::MaxF64,
            3 => ReduceOp::MinF64,
            _ => ReduceOp::Concat,
        }
    }
}

/// A completed reduction, as handed to the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// The reduction stream (e.g. one per AMPI communicator).
    pub tag: u64,
    /// Sequence number within the stream.
    pub seq: u64,
    /// Folded payload.
    pub data: Vec<u8>,
}

#[derive(Debug, Default, Clone, PartialEq)]
struct ContribMsg {
    tag: u64,
    seq: u64,
    rank: u64,
    op: u8,
    expected: u64,
    /// Contributor's rollback epoch at send time. A contribution that was
    /// in flight when a recovery rolled the world back will be re-issued
    /// by the replayed execution (with fresh placement data); the stale
    /// copy is dropped at the root rather than folded.
    epoch: u64,
    data: Vec<u8>,
}
pup_fields!(ContribMsg {
    tag,
    seq,
    rank,
    op,
    expected,
    epoch,
    data
});

type SinkFn = Rc<dyn Fn(&Pe, Reduction)>;

#[derive(Default)]
struct ReduceState {
    pending: HashMap<(u64, u64), Pending>,
    sink: OnceCell<SinkFn>,
    /// Re-contributions ignored (same `(tag, seq, rank)` seen twice) —
    /// only possible when a send is replayed across a recovery rollback.
    duplicates: u64,
    /// Contributions dropped because they carried a pre-rollback epoch.
    stale: u64,
}

struct Pending {
    got: u64,
    expected: u64,
    op: ReduceOp,
    gather: Vec<(u64, Vec<u8>)>,
}

/// The PE acting as root for reduction stream `tag`.
pub fn root_of(tag: u64, num_pes: usize) -> usize {
    (tag % num_pes as u64) as usize
}

/// The *live* root for reduction stream `tag`: as [`root_of`], but a
/// stream rooted on a confirmed-dead PE is deterministically re-rooted
/// onto a survivor (identity with no failures).
pub fn live_root_of(pe: &Pe, tag: u64) -> usize {
    crate::layer::live_map(pe, tag)
}

/// Re-contributions ignored on this PE so far (duplicate `(tag, seq,
/// rank)` triples — the recovery-replay guard; see `on_contrib`).
pub fn duplicate_contributions(pe: &Pe) -> u64 {
    pe.ext::<ReduceState, _>(|st| st.duplicates)
}

/// Contributions dropped on this PE because their epoch stamp predated
/// the last rollback.
pub fn stale_contributions(pe: &Pe) -> u64 {
    pe.ext::<ReduceState, _>(|st| st.stale)
}

/// Discard every pending (incomplete) reduction on this PE. The recovery
/// driver calls this at rollback: partially gathered streams may contain
/// pre-rollback contributions whose data (e.g. load reports naming a dead
/// PE) must not survive into the replayed execution — every participant
/// re-contributes after the rollback, rebuilding the streams from scratch.
/// Returns how many pending streams were dropped.
pub fn purge_pending(pe: &Pe) -> usize {
    pe.ext::<ReduceState, _>(|st| {
        let n = st.pending.len();
        st.pending.clear();
        n
    })
}

/// Install this PE's completion sink (invoked at the root when a
/// reduction finishes).
pub fn set_reduction_sink(pe: &Pe, f: impl Fn(&Pe, Reduction) + 'static) {
    pe.ext::<ReduceState, _>(|st| {
        st.sink
            .set(Rc::new(f))
            .map_err(|_| ())
            .expect("reduction sink already set on this PE")
    });
}

/// Contribute `data` to reduction `(tag, seq)` on behalf of `rank`; the
/// reduction completes at the root once `expected` distinct contributions
/// arrive. Safe to call from a thread that migrates immediately after.
pub fn contribute(pe: &Pe, tag: u64, seq: u64, rank: u64, op: ReduceOp, expected: u64, data: Vec<u8>) {
    let mut m = ContribMsg {
        tag,
        seq,
        rank,
        op: op.tag(),
        expected,
        epoch: crate::layer::comm_epoch(pe),
        data,
    };
    let root = live_root_of(pe, tag);
    pe.send(root, crate::layer::ids().contrib, flows_pup::to_bytes(&mut m));
}

pub(crate) fn on_contrib(pe: &Pe, msg: Message) {
    let m: ContribMsg = flows_pup::from_bytes(&msg.data).expect("contrib wire");
    let op = ReduceOp::from_tag(m.op);
    // Read the epoch *before* borrowing ReduceState: ext() is one shared
    // RefCell per PE, so nested ext calls would panic.
    let cur_epoch = crate::layer::comm_epoch(pe);
    let finished = pe.ext::<ReduceState, _>(|st| {
        if m.epoch < cur_epoch {
            // In flight across a rollback: the replayed execution will
            // re-contribute with current placement data.
            st.stale += 1;
            return None;
        }
        if st
            .pending
            .get(&(m.tag, m.seq))
            .is_some_and(|p| p.gather.iter().any(|(r, _)| *r == m.rank))
        {
            // The same rank contributing twice to one (tag, seq) can only
            // be a send replayed across a recovery rollback boundary (the
            // link layer already suppresses in-protocol retransmit dups).
            // Folding it twice would silently corrupt the reduction.
            st.duplicates += 1;
            return None;
        }
        let p = st
            .pending
            .entry((m.tag, m.seq))
            .or_insert_with(|| Pending {
                got: 0,
                expected: m.expected,
                op,
                gather: Vec::new(),
            });
        assert_eq!(p.expected, m.expected, "inconsistent reduction size");
        assert_eq!(p.op, op, "inconsistent reduction op");
        p.got += 1;
        // Buffer every contribution; fold at completion in *rank order* so
        // floating-point reductions are deterministic no matter how
        // migration reshuffles arrival order.
        p.gather.push((m.rank, m.data.clone()));
        if p.got == p.expected {
            let mut p = st.pending.remove(&(m.tag, m.seq)).expect("just inserted");
            p.gather.sort_by_key(|(r, _)| *r);
            let data = if op == ReduceOp::Concat {
                p.gather.into_iter().flat_map(|(_, d)| d).collect()
            } else {
                let mut acc = None;
                for (_, d) in &p.gather {
                    combine(op, &mut acc, d);
                }
                acc.unwrap_or_default()
            };
            Some(Reduction {
                tag: m.tag,
                seq: m.seq,
                data,
            })
        } else {
            None
        }
    });
    if let Some(red) = finished {
        let sink = pe.ext::<ReduceState, _>(|st| st.sink.get().cloned());
        let sink = sink.expect("reduction finished but no sink installed on root PE");
        sink(pe, red);
    }
}

fn combine(op: ReduceOp, acc: &mut Option<Vec<u8>>, data: &[u8]) {
    match acc {
        None => *acc = Some(data.to_vec()),
        Some(a) => {
            assert_eq!(a.len(), data.len(), "reduction payloads must agree in length");
            match op {
                ReduceOp::SumF64 | ReduceOp::MaxF64 | ReduceOp::MinF64 => {
                    for i in (0..a.len()).step_by(8) {
                        let x = f64::from_le_bytes(a[i..i + 8].try_into().unwrap());
                        let y = f64::from_le_bytes(data[i..i + 8].try_into().unwrap());
                        let r = match op {
                            ReduceOp::SumF64 => x + y,
                            ReduceOp::MaxF64 => x.max(y),
                            ReduceOp::MinF64 => x.min(y),
                            _ => unreachable!(),
                        };
                        a[i..i + 8].copy_from_slice(&r.to_le_bytes());
                    }
                }
                ReduceOp::SumU64 => {
                    for i in (0..a.len()).step_by(8) {
                        let x = u64::from_le_bytes(a[i..i + 8].try_into().unwrap());
                        let y = u64::from_le_bytes(data[i..i + 8].try_into().unwrap());
                        a[i..i + 8].copy_from_slice(&(x.wrapping_add(y)).to_le_bytes());
                    }
                }
                ReduceOp::Concat => unreachable!("gathered separately"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_tags_round_trip() {
        for op in [
            ReduceOp::SumF64,
            ReduceOp::SumU64,
            ReduceOp::MaxF64,
            ReduceOp::MinF64,
            ReduceOp::Concat,
        ] {
            assert_eq!(ReduceOp::from_tag(op.tag()), op);
        }
    }

    #[test]
    fn combine_folds_elementwise() {
        let mut acc = None;
        combine(ReduceOp::SumF64, &mut acc, &1.5f64.to_le_bytes());
        combine(ReduceOp::SumF64, &mut acc, &2.25f64.to_le_bytes());
        let r = f64::from_le_bytes(acc.unwrap()[..8].try_into().unwrap());
        assert_eq!(r, 3.75);

        let mut acc = None;
        combine(ReduceOp::MaxF64, &mut acc, &1.0f64.to_le_bytes());
        combine(ReduceOp::MaxF64, &mut acc, &(-5.0f64).to_le_bytes());
        let r = f64::from_le_bytes(acc.unwrap()[..8].try_into().unwrap());
        assert_eq!(r, 1.0);

        let mut acc = None;
        combine(ReduceOp::SumU64, &mut acc, &7u64.to_le_bytes());
        combine(ReduceOp::SumU64, &mut acc, &8u64.to_le_bytes());
        let r = u64::from_le_bytes(acc.unwrap()[..8].try_into().unwrap());
        assert_eq!(r, 15);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let mut acc = Some(vec![0u8; 8]);
        combine(ReduceOp::SumF64, &mut acc, &[0u8; 16]);
    }

    /// A rank whose contribution is replayed (as happens when a send
    /// crosses a recovery rollback boundary) must not be folded twice:
    /// the duplicate is dropped, the reduction completes exactly once
    /// with the single-count result.
    #[test]
    fn duplicate_rank_contribution_is_dropped_not_double_counted() {
        use flows_converse::MachineBuilder;
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let result = Arc::new(AtomicU64::new(0));
        let completions = Arc::new(AtomicU64::new(0));
        let dups = Arc::new(AtomicU64::new(0));
        let mut mb = MachineBuilder::new(2);
        let _comm = crate::layer::CommLayer::register(&mut mb);
        let (r2, c2, d2) = (result.clone(), completions.clone(), dups.clone());
        mb.run_deterministic(move |pe| {
            if pe.id() == root_of(3, 2) {
                let (r, c, d) = (r2.clone(), c2.clone(), d2.clone());
                set_reduction_sink(pe, move |pe, red| {
                    r.store(
                        u64::from_le_bytes(red.data[..8].try_into().unwrap()),
                        Ordering::Relaxed,
                    );
                    c.fetch_add(1, Ordering::Relaxed);
                    d.store(duplicate_contributions(pe), Ordering::Relaxed);
                });
            }
            if pe.id() == 0 {
                contribute(pe, 3, 1, 0, ReduceOp::SumU64, 2, 5u64.to_le_bytes().to_vec());
                // Replay of rank 0's contribution — must be ignored.
                contribute(pe, 3, 1, 0, ReduceOp::SumU64, 2, 5u64.to_le_bytes().to_vec());
                contribute(pe, 3, 1, 1, ReduceOp::SumU64, 2, 7u64.to_le_bytes().to_vec());
            }
        });
        assert_eq!(completions.load(Ordering::Relaxed), 1, "completed exactly once");
        assert_eq!(result.load(Ordering::Relaxed), 12, "5 + 7, the dup not folded");
        assert_eq!(dups.load(Ordering::Relaxed), 1, "the replay was counted as a dup");
    }
}
