//! Migration-tolerant reductions.
//!
//! Every participant contributes a value tagged `(tag, seq, rank)`; the
//! reduction root (a fixed PE derived from the tag) folds contributions
//! and hands the finished result to the PE's *reduction sink*. Because
//! contributions are addressed to a fixed PE and identified by rank, a
//! participant may migrate at any moment — even between contributing and
//! the reduction finishing — without the protocol noticing (§3.1.2).

use flows_converse::{Message, Pe};
use flows_pup::pup_fields;
use std::cell::OnceCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Combining operation applied elementwise to the byte payloads.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReduceOp {
    /// Elementwise sum of little-endian `f64` vectors.
    SumF64,
    /// Elementwise sum of little-endian `u64` vectors.
    SumU64,
    /// Elementwise max of little-endian `f64` vectors.
    MaxF64,
    /// Elementwise min of little-endian `f64` vectors.
    MinF64,
    /// Concatenate payloads in rank order (gather).
    Concat,
}

impl ReduceOp {
    fn tag(self) -> u8 {
        match self {
            ReduceOp::SumF64 => 0,
            ReduceOp::SumU64 => 1,
            ReduceOp::MaxF64 => 2,
            ReduceOp::MinF64 => 3,
            ReduceOp::Concat => 4,
        }
    }

    fn from_tag(t: u8) -> ReduceOp {
        match t {
            0 => ReduceOp::SumF64,
            1 => ReduceOp::SumU64,
            2 => ReduceOp::MaxF64,
            3 => ReduceOp::MinF64,
            _ => ReduceOp::Concat,
        }
    }
}

/// A completed reduction, as handed to the sink.
#[derive(Debug, Clone, PartialEq)]
pub struct Reduction {
    /// The reduction stream (e.g. one per AMPI communicator).
    pub tag: u64,
    /// Sequence number within the stream.
    pub seq: u64,
    /// Folded payload.
    pub data: Vec<u8>,
}

#[derive(Debug, Default, Clone, PartialEq)]
struct ContribMsg {
    tag: u64,
    seq: u64,
    rank: u64,
    op: u8,
    expected: u64,
    data: Vec<u8>,
}
pup_fields!(ContribMsg {
    tag,
    seq,
    rank,
    op,
    expected,
    data
});

type SinkFn = Rc<dyn Fn(&Pe, Reduction)>;

#[derive(Default)]
struct ReduceState {
    pending: HashMap<(u64, u64), Pending>,
    sink: OnceCell<SinkFn>,
}

struct Pending {
    got: u64,
    expected: u64,
    op: ReduceOp,
    gather: Vec<(u64, Vec<u8>)>,
}

/// The PE acting as root for reduction stream `tag`.
pub fn root_of(tag: u64, num_pes: usize) -> usize {
    (tag % num_pes as u64) as usize
}

/// Install this PE's completion sink (invoked at the root when a
/// reduction finishes).
pub fn set_reduction_sink(pe: &Pe, f: impl Fn(&Pe, Reduction) + 'static) {
    pe.ext::<ReduceState, _>(|st| {
        st.sink
            .set(Rc::new(f))
            .map_err(|_| ())
            .expect("reduction sink already set on this PE")
    });
}

/// Contribute `data` to reduction `(tag, seq)` on behalf of `rank`; the
/// reduction completes at the root once `expected` distinct contributions
/// arrive. Safe to call from a thread that migrates immediately after.
pub fn contribute(pe: &Pe, tag: u64, seq: u64, rank: u64, op: ReduceOp, expected: u64, data: Vec<u8>) {
    let mut m = ContribMsg {
        tag,
        seq,
        rank,
        op: op.tag(),
        expected,
        data,
    };
    let root = root_of(tag, pe.num_pes());
    pe.send(root, crate::layer::ids().contrib, flows_pup::to_bytes(&mut m));
}

pub(crate) fn on_contrib(pe: &Pe, msg: Message) {
    let m: ContribMsg = flows_pup::from_bytes(&msg.data).expect("contrib wire");
    let op = ReduceOp::from_tag(m.op);
    let finished = pe.ext::<ReduceState, _>(|st| {
        let p = st
            .pending
            .entry((m.tag, m.seq))
            .or_insert_with(|| Pending {
                got: 0,
                expected: m.expected,
                op,
                gather: Vec::new(),
            });
        assert_eq!(p.expected, m.expected, "inconsistent reduction size");
        assert_eq!(p.op, op, "inconsistent reduction op");
        p.got += 1;
        // Buffer every contribution; fold at completion in *rank order* so
        // floating-point reductions are deterministic no matter how
        // migration reshuffles arrival order.
        p.gather.push((m.rank, m.data.clone()));
        if p.got == p.expected {
            let mut p = st.pending.remove(&(m.tag, m.seq)).expect("just inserted");
            p.gather.sort_by_key(|(r, _)| *r);
            let data = if op == ReduceOp::Concat {
                p.gather.into_iter().flat_map(|(_, d)| d).collect()
            } else {
                let mut acc = None;
                for (_, d) in &p.gather {
                    combine(op, &mut acc, d);
                }
                acc.unwrap_or_default()
            };
            Some(Reduction {
                tag: m.tag,
                seq: m.seq,
                data,
            })
        } else {
            None
        }
    });
    if let Some(red) = finished {
        let sink = pe.ext::<ReduceState, _>(|st| st.sink.get().cloned());
        let sink = sink.expect("reduction finished but no sink installed on root PE");
        sink(pe, red);
    }
}

fn combine(op: ReduceOp, acc: &mut Option<Vec<u8>>, data: &[u8]) {
    match acc {
        None => *acc = Some(data.to_vec()),
        Some(a) => {
            assert_eq!(a.len(), data.len(), "reduction payloads must agree in length");
            match op {
                ReduceOp::SumF64 | ReduceOp::MaxF64 | ReduceOp::MinF64 => {
                    for i in (0..a.len()).step_by(8) {
                        let x = f64::from_le_bytes(a[i..i + 8].try_into().unwrap());
                        let y = f64::from_le_bytes(data[i..i + 8].try_into().unwrap());
                        let r = match op {
                            ReduceOp::SumF64 => x + y,
                            ReduceOp::MaxF64 => x.max(y),
                            ReduceOp::MinF64 => x.min(y),
                            _ => unreachable!(),
                        };
                        a[i..i + 8].copy_from_slice(&r.to_le_bytes());
                    }
                }
                ReduceOp::SumU64 => {
                    for i in (0..a.len()).step_by(8) {
                        let x = u64::from_le_bytes(a[i..i + 8].try_into().unwrap());
                        let y = u64::from_le_bytes(data[i..i + 8].try_into().unwrap());
                        a[i..i + 8].copy_from_slice(&(x.wrapping_add(y)).to_le_bytes());
                    }
                }
                ReduceOp::Concat => unreachable!("gathered separately"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_tags_round_trip() {
        for op in [
            ReduceOp::SumF64,
            ReduceOp::SumU64,
            ReduceOp::MaxF64,
            ReduceOp::MinF64,
            ReduceOp::Concat,
        ] {
            assert_eq!(ReduceOp::from_tag(op.tag()), op);
        }
    }

    #[test]
    fn combine_folds_elementwise() {
        let mut acc = None;
        combine(ReduceOp::SumF64, &mut acc, &1.5f64.to_le_bytes());
        combine(ReduceOp::SumF64, &mut acc, &2.25f64.to_le_bytes());
        let r = f64::from_le_bytes(acc.unwrap()[..8].try_into().unwrap());
        assert_eq!(r, 3.75);

        let mut acc = None;
        combine(ReduceOp::MaxF64, &mut acc, &1.0f64.to_le_bytes());
        combine(ReduceOp::MaxF64, &mut acc, &(-5.0f64).to_le_bytes());
        let r = f64::from_le_bytes(acc.unwrap()[..8].try_into().unwrap());
        assert_eq!(r, 1.0);

        let mut acc = None;
        combine(ReduceOp::SumU64, &mut acc, &7u64.to_le_bytes());
        combine(ReduceOp::SumU64, &mut acc, &8u64.to_le_bytes());
        let r = u64::from_le_bytes(acc.unwrap()[..8].try_into().unwrap());
        assert_eq!(r, 15);
    }

    #[test]
    #[should_panic(expected = "length")]
    fn mismatched_lengths_panic() {
        let mut acc = Some(vec![0u8; 8]);
        combine(ReduceOp::SumF64, &mut acc, &[0u8; 16]);
    }
}
