//! Saved flows of control and the swap operation over them.

use crate::swap::{flows_swap_full, flows_swap_min};
use flows_sys::signal::SigSet;
use std::fmt;

/// Which swap routine a [`Context`] uses (see crate docs and paper §4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwapKind {
    /// Figure 10(b): callee-saved registers only — the minimal correct swap.
    Minimal,
    /// Every GPR plus the 512-byte FXSAVE area (deliberately wasteful).
    Full,
    /// Minimal swap bracketed by `sigprocmask` save/restore system calls,
    /// emulating `swapcontext`-based thread packages.
    SignalMask,
}

impl SwapKind {
    /// All kinds, for sweep-style benches and tests.
    pub const ALL: [SwapKind; 3] = [SwapKind::Minimal, SwapKind::Full, SwapKind::SignalMask];

    /// Short stable name used in benchmark output tables.
    pub fn name(self) -> &'static str {
        match self {
            SwapKind::Minimal => "minimal",
            SwapKind::Full => "full",
            SwapKind::SignalMask => "sigmask",
        }
    }
}

/// A suspended flow of control: a saved stack pointer (everything else
/// lives on the flow's own stack), the swap flavor it was built for, and —
/// for [`SwapKind::SignalMask`] — the saved signal mask.
///
/// The mask is boxed: `sigset_t` is 128 bytes on Linux, and a thread
/// package keeping a `Context` per thread would pay that for every thread
/// even though only the (deliberately slow) sigmask kind ever reads it.
/// Inline, the mask would dominate the per-thread control block at
/// million-thread scale.
pub struct Context {
    pub(crate) sp: usize,
    kind: SwapKind,
    mask: Option<Box<SigSet>>,
}

impl Context {
    /// An empty context of the given kind. It becomes valid the first time
    /// a flow swaps *out* through it, or when built by
    /// [`crate::InitialStack`].
    pub fn new(kind: SwapKind) -> Context {
        // Capture the creating thread's mask as the initial mask, as
        // swapcontext-style packages do; the other kinds never need one.
        let mask = if kind == SwapKind::SignalMask {
            Some(Box::new(SigSet::current()))
        } else {
            None
        };
        Context { sp: 0, kind, mask }
    }

    /// The swap flavor of this context.
    pub fn kind(&self) -> SwapKind {
        self.kind
    }

    /// The saved stack pointer (0 until first used). Exposed for the thread
    /// package's migration logic, which needs to relocate or validate it.
    pub fn saved_sp(&self) -> usize {
        self.sp
    }

    /// Overwrite the saved stack pointer. Used when a migrated thread's
    /// stack bytes have been reinstated at the same virtual address on the
    /// destination processor (isomalloc guarantees the address is equal, so
    /// the value is carried over verbatim).
    ///
    /// # Safety
    /// `sp` must point into a live stack whose contents were produced by a
    /// suspend through a context of the same [`SwapKind`].
    pub unsafe fn set_saved_sp(&mut self, sp: usize) {
        self.sp = sp;
    }

    /// Suspend the calling flow into `old` and resume the flow saved in
    /// `new`.
    ///
    /// # Safety
    /// * `new` must contain a valid saved flow (crafted by
    ///   [`crate::InitialStack`] or saved by a previous swap of the same
    ///   kind);
    /// * the flow saved in `new` must not be resumed concurrently from
    ///   another OS thread;
    /// * both contexts must have the same [`SwapKind`] (checked, panics).
    pub unsafe fn swap(old: &mut Context, new: &Context) {
        // SAFETY: forwarded contract.
        unsafe { Context::swap_raw(old, new) }
    }

    /// Raw-pointer variant of [`Context::swap`] for runtime schedulers.
    ///
    /// A scheduler resuming a thread keeps the `swap` call frame alive for
    /// the *entire* execution of the thread, so holding Rust references to
    /// either context across the switch would alias the references the
    /// thread itself creates when it suspends. Passing raw pointers keeps
    /// the program free of overlapping references.
    ///
    /// # Safety
    /// As [`Context::swap`], plus: both pointers must be valid for the full
    /// duration of the switch and must not be used to create overlapping
    /// references elsewhere.
    pub unsafe fn swap_raw(old: *mut Context, new: *const Context) {
        // SAFETY: short-lived reads of the kind fields; no references are
        // held across the actual switch below.
        let (old_kind, new_kind) = unsafe { ((*old).kind, (*new).kind) };
        assert_eq!(
            old_kind, new_kind,
            "cannot swap between contexts of different SwapKind"
        );
        match old_kind {
            SwapKind::Minimal => {
                // SAFETY: per this function's contract.
                unsafe { flows_swap_min(&raw mut (*old).sp, &raw const (*new).sp) }
            }
            SwapKind::Full => {
                // SAFETY: per this function's contract.
                unsafe { flows_swap_full(&raw mut (*old).sp, &raw const (*new).sp) }
            }
            SwapKind::SignalMask => {
                // Emulate swapcontext: save our mask into `old`, install
                // `new`'s mask, then do the register swap. Two syscalls per
                // switch — exactly the overhead §4.3 warns about.
                // SAFETY: valid SigSet boxes (every sigmask-kind context
                // allocates one at construction); the references are dropped
                // before the register swap, and mask writes race nothing
                // (caller guarantees exclusive access to *old).
                unsafe {
                    let old_mask: *mut SigSet = (*old)
                        .mask
                        .as_deref_mut()
                        .expect("sigmask context carries a mask");
                    let new_mask: *const SigSet = (*new)
                        .mask
                        .as_deref()
                        .expect("sigmask context carries a mask");
                    flows_sys::signal::swap_mask(old_mask, new_mask);
                    flows_swap_min(&raw mut (*old).sp, &raw const (*new).sp);
                }
            }
        }
    }
}

impl fmt::Debug for Context {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Context")
            .field("sp", &format_args!("{:#x}", self.sp))
            .field("kind", &self.kind)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            SwapKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), 3);
    }

    #[test]
    #[should_panic(expected = "different SwapKind")]
    fn mixed_kind_swap_panics() {
        let mut a = Context::new(SwapKind::Minimal);
        let b = Context::new(SwapKind::Full);
        // SAFETY: panics on the kind check before touching any stack.
        unsafe { Context::swap(&mut a, &b) };
    }
}
