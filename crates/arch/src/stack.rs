//! Bootstrap frames: making a fresh stack *look* suspended.
//!
//! A new flow has never executed, so [`Context::swap`] cannot have saved
//! it. Instead we hand-craft the exact stack image the swap routine's
//! resume path expects: the pop sequence delivers the entry argument in
//! `%rdi` (the paper's `swap64` deliberately includes `%rdi` in its saved
//! set for this purpose), `ret` jumps to the entry function, and when the
//! entry function returns it "returns" into the exit trampoline.

use crate::context::{Context, SwapKind};
use crate::swap::{flows_fxsave, flows_thread_exit_tramp};

/// Entry signature for a brand-new flow: a C-ABI function taking one
/// pointer-sized argument.
pub type Entry = extern "C" fn(usize);

/// Builder for the initial stack frame of a new flow.
pub struct InitialStack;

/// Bytes of the crafted frame below the (aligned) stack top, for the most
/// expensive kind ([`SwapKind::Full`]): 2 control words + 15 registers +
/// 544 bytes of FXSAVE scratch. Callers must provide stacks comfortably
/// larger than this.
pub const MIN_STACK: usize = 1024;

impl InitialStack {
    /// Craft an initial frame at the top of the stack whose *highest*
    /// usable address is `stack_top` (it is aligned down to 16 bytes
    /// internally), so that swapping to the returned [`Context`] invokes
    /// `entry(arg)` on that stack. When `entry` returns, the exit hook
    /// installed via [`crate::set_exit_hook`] runs.
    ///
    /// # Safety
    /// * `[stack_top - len, stack_top)` for some `len >= MIN_STACK` must be
    ///   committed, writable memory owned by the caller and unused by
    ///   anything else;
    /// * the stack must remain valid (same address, committed) for as long
    ///   as the flow can run;
    /// * the returned context must be swapped to at most from one OS thread
    ///   at a time.
    pub unsafe fn build(kind: SwapKind, stack_top: *mut u8, entry: Entry, arg: usize) -> Context {
        let top = (stack_top as usize) & !15usize;
        debug_assert!(top != 0, "null stack top");

        // SAFETY: per the function contract the region below `top` is
        // writable; all stores below stay within MIN_STACK bytes of it.
        unsafe {
            let word = |off_from_top: usize| (top - off_from_top) as *mut usize;
            // Control words: entry's fake return address, then the `ret`
            // target of the swap routine.
            *word(8) = flows_thread_exit_tramp as *const () as usize;
            *word(16) = entry as *const () as usize;
            // Popped register file. %rdi carries the argument.
            *word(24) = arg; // rdi
            for off in [32, 40, 48, 56, 64, 72] {
                *word(off) = 0; // rbp, rbx, r12, r13, r14, r15
            }
            let mut ctx = Context::new(kind);
            match kind {
                SwapKind::Minimal | SwapKind::SignalMask => {
                    ctx.sp = top - 72;
                }
                SwapKind::Full => {
                    // The full swap also pops the 8 caller-saved GPRs...
                    for off in [80, 88, 96, 104, 112, 120, 128, 136] {
                        *word(off) = 0; // rax, rcx, rdx, rsi, r8..r11
                    }
                    // ...and restores an FXSAVE image from a 16-aligned
                    // area, with the pre-alignment stack pointer stashed at
                    // +512. Mirror flows_swap_full's epilogue expectations.
                    let pre_align_sp = top - 136;
                    let aligned = (pre_align_sp - 544) & !15usize;
                    *((aligned + 512) as *mut usize) = pre_align_sp;
                    // Seed a valid FXSAVE image by capturing the current
                    // thread's (ABI-clean at this point) FP/SSE state.
                    flows_fxsave(aligned as *mut u8);
                    ctx.sp = aligned;
                }
            }
            ctx
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::set_exit_hook;
    use std::cell::Cell;

    /// Shared state for ping-pong tests. Accessed only through raw
    /// pointers so the two flows never hold overlapping Rust references.
    struct PingPong {
        main: Context,
        flow: Context,
        counter: u64,
        kind: SwapKind,
        exited: bool,
        _stack: Vec<u8>,
    }

    thread_local! {
        static EXIT_TARGET: Cell<*mut PingPong> = const { Cell::new(std::ptr::null_mut()) };
    }

    fn exit_hook() -> ! {
        let st = EXIT_TARGET.with(|c| c.get());
        assert!(!st.is_null(), "exit hook fired without a registered test");
        // SAFETY: the test keeps `st` alive until the main flow resumes.
        unsafe {
            (*st).exited = true;
            let mut dead = Context::new((*st).kind);
            Context::swap(&mut dead, &(*st).main);
        }
        unreachable!("a dead flow was resumed");
    }

    fn new_pingpong(kind: SwapKind, entry: Entry) -> *mut PingPong {
        let mut stack = vec![0u8; 128 * 1024];
        // SAFETY: one-past-the-end of the owned vec, never dereferenced
        // directly — only used as the initial stack top.
        let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let st = Box::into_raw(Box::new(PingPong {
            main: Context::new(kind),
            flow: Context::new(kind),
            counter: 0,
            kind,
            exited: false,
            _stack: stack,
        }));
        // SAFETY: the stack vec is owned by the PingPong and outlives the flow.
        unsafe { (*st).flow = InitialStack::build(kind, top, entry, st as usize) };
        EXIT_TARGET.with(|c| c.set(st));
        set_exit_hook(exit_hook);
        st
    }

    extern "C" fn yielding_entry(arg: usize) {
        let st = arg as *mut PingPong;
        // SAFETY: the main flow only touches disjoint state while we run.
        unsafe {
            for _ in 0..3 {
                (*st).counter += 1;
                Context::swap(&mut (*st).flow, &(*st).main);
            }
        }
        // Returning triggers the exit trampoline.
    }

    fn run_pingpong(kind: SwapKind) {
        let st = new_pingpong(kind, yielding_entry);
        // SAFETY: st outlives the flow; we only resume a suspended flow.
        unsafe {
            for expect in 1..=3u64 {
                Context::swap(&mut (*st).main, &(*st).flow);
                assert_eq!((*st).counter, expect);
            }
            assert!(!(*st).exited);
            // Fourth resume: the loop ends, the entry returns, the exit
            // hook swaps back to us.
            Context::swap(&mut (*st).main, &(*st).flow);
            assert!((*st).exited, "exit trampoline must fire");
            drop(Box::from_raw(st));
        }
        EXIT_TARGET.with(|c| c.set(std::ptr::null_mut()));
    }

    #[test]
    fn pingpong_minimal() {
        run_pingpong(SwapKind::Minimal);
    }

    #[test]
    fn pingpong_full() {
        run_pingpong(SwapKind::Full);
    }

    #[test]
    fn pingpong_sigmask() {
        run_pingpong(SwapKind::SignalMask);
    }

    /// Recursive, stack-hungry entry that yields mid-recursion: verifies
    /// that deep frames survive suspension and that the argument made it
    /// through the crafted frame.
    extern "C" fn deep_entry(arg: usize) {
        let st = arg as *mut PingPong;
        fn burn(st: *mut PingPong, depth: usize, acc: u64) -> u64 {
            let mut pad = [0u8; 512];
            pad[0] = depth as u8;
            pad[511] = (depth >> 8) as u8;
            std::hint::black_box(&mut pad);
            if depth == 0 {
                // SAFETY: disjoint-field access as in yielding_entry.
                unsafe {
                    (*st).counter = acc;
                    Context::swap(&mut (*st).flow, &(*st).main);
                }
                return acc;
            }
            let r = burn(st, depth - 1, acc + pad[0] as u64);
            std::hint::black_box(pad[511]);
            r
        }
        let total = burn(st, 64, 0);
        // SAFETY: as above.
        unsafe { (*st).counter = total + 1_000_000 };
    }

    #[test]
    fn deep_recursion_survives_suspension() {
        let st = new_pingpong(SwapKind::Minimal, deep_entry);
        // SAFETY: as in run_pingpong.
        unsafe {
            Context::swap(&mut (*st).main, &(*st).flow);
            let mid = (*st).counter;
            assert!(mid > 0, "suspended mid-recursion with accumulator");
            Context::swap(&mut (*st).main, &(*st).flow);
            assert_eq!((*st).counter, mid + 1_000_000);
            assert!((*st).exited);
            drop(Box::from_raw(st));
        }
        EXIT_TARGET.with(|c| c.set(std::ptr::null_mut()));
    }

    /// Two flows of different kinds can coexist on one OS thread as long as
    /// each is swapped with a matching-kind partner context.
    #[test]
    fn many_switches_are_stable() {
        let st = new_pingpong(SwapKind::Minimal, counting_entry);
        // SAFETY: as in run_pingpong.
        unsafe {
            for i in 1..=10_000u64 {
                Context::swap(&mut (*st).main, &(*st).flow);
                assert_eq!((*st).counter, i);
            }
            // Tell the flow to finish.
            (*st).counter = u64::MAX;
            Context::swap(&mut (*st).main, &(*st).flow);
            assert!((*st).exited);
            drop(Box::from_raw(st));
        }
        EXIT_TARGET.with(|c| c.set(std::ptr::null_mut()));
    }

    extern "C" fn counting_entry(arg: usize) {
        let st = arg as *mut PingPong;
        // SAFETY: as in yielding_entry.
        unsafe {
            let mut n = 0u64;
            loop {
                if (*st).counter == u64::MAX {
                    return;
                }
                n += 1;
                (*st).counter = n;
                Context::swap(&mut (*st).flow, &(*st).main);
            }
        }
    }
}
