//! Stack canaries for the runtime sanitizer (`--features sanitize`).
//!
//! A canary is a magic word written at the *floor* of a flow's stack —
//! the lowest address a well-behaved flow may ever touch. The thread
//! package arms it when a flow is created or switched in and verifies it
//! when the flow suspends: a smashed canary means the flow ran past the
//! bottom of its stack (or something scribbled over the slot), which on
//! the isomalloc layout is the last writable word before the guard page
//! and on the copy-stack layout is the edge of the common region.
//!
//! These helpers are deliberately dumb — raw word writes/reads — so they
//! can be called from the context-switch path with no allocation and no
//! TLS. The policy (when to arm, when to verify, what to do on a trip)
//! lives in `flows-core`.

/// The canary word. An address-like pattern that is recognizable in a
/// debugger hexdump and is never a valid saved frame value.
pub const STACK_CANARY: u64 = 0xCAFE_F10C_5AFE_57AC;

/// Write the canary at `floor` (the lowest usable stack address).
///
/// # Safety
/// `floor..floor+8` must be writable memory owned by the flow's stack and
/// must not overlap any live frame (the caller picks a floor below the
/// deepest stack pointer the flow can reach).
pub unsafe fn arm(floor: usize) {
    // SAFETY: per this function's contract; unaligned write so callers
    // need not round `floor`.
    unsafe { (floor as *mut u64).write_unaligned(STACK_CANARY) }
}

/// Is the canary at `floor` intact?
///
/// # Safety
/// `floor..floor+8` must be readable memory previously armed by [`arm`].
pub unsafe fn intact(floor: usize) -> bool {
    // SAFETY: per this function's contract.
    unsafe { (floor as *const u64).read_unaligned() == STACK_CANARY }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_then_verify_then_smash() {
        let mut word = [0u8; 16];
        let floor = word.as_mut_ptr() as usize + 3; // deliberately unaligned
        // SAFETY: floor points into the local buffer with 8 bytes of room.
        unsafe {
            arm(floor);
            assert!(intact(floor));
            (floor as *mut u8).write(0x00); // a single-byte overwrite trips it
            assert!(!intact(floor));
        }
    }
}
