//! # flows-arch — machine-level context switching
//!
//! This crate implements the paper's Figure 10: the *minimal correct*
//! user-level thread swap routine. Because the swap is entered by an
//! ordinary subroutine call, only the callee-saved registers of the
//! platform ABI need to be saved and restored — scratch registers are
//! already dead or spilled by the compiler at any call site, and on x86-64
//! the x87/SSE state is in its ABI-mandated call-boundary state.
//!
//! Three swap flavors are provided so the §4.3 ablation ("most thread
//! packages save far more state than necessary") can be measured:
//!
//! * [`SwapKind::Minimal`] — Figure 10(b): callee-saved GPRs only;
//! * [`SwapKind::Full`] — additionally saves every general-purpose register
//!   and the complete 512-byte FXSAVE area, emulating the "save everything
//!   through fear or ignorance" packages;
//! * [`SwapKind::SignalMask`] — the minimal swap bracketed by two
//!   `sigprocmask` system calls, emulating `swapcontext`/`setjmp` with
//!   signal-mask save/restore, which the paper identifies as the idiom that
//!   squanders the entire advantage of user-level threads.
//!
//! The public entry points are [`Context`] (a saved flow of control) and
//! [`Context::swap`]. Stack bootstrap for brand-new flows is in
//! [`stack::InitialStack`].

#![warn(missing_docs)]

#[cfg(feature = "sanitize")]
pub mod canary;
pub mod context;
pub mod stack;
mod swap;

pub use context::{Context, SwapKind};
pub use stack::InitialStack;
pub use swap::set_exit_hook;
