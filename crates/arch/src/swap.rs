//! The swap routines themselves (paper Figure 10) plus the thread-exit
//! trampoline, as `global_asm!`.
//!
//! Only x86-64 is implemented with hand assembly, mirroring the paper's
//! `swap64` routine. The crate fails to compile on other architectures,
//! which is the honest statement of the paper's Table 1 for our
//! implementation ("Yes" on x86-64, "Maybe" elsewhere).

#[cfg(not(target_arch = "x86_64"))]
compile_error!(
    "flows-arch implements the paper's x86-64 swap routine (Fig. 10b); \
     other architectures would need their own callee-saved register set"
);

use std::cell::Cell;

// ---------------------------------------------------------------------------
// flows_swap_min — Figure 10(b), verbatim register set.
//
// C signature: void flows_swap_min(usize *old_sp, const usize *new_sp);
//
// Pushes the SysV callee-saved registers (plus %rdi, exactly as the paper
// does, so a crafted initial frame can deliver the entry argument through
// the normal pop sequence), stores the stack pointer through `old_sp`,
// loads the new stack pointer from `new_sp`, pops, and returns on the new
// stack.
// ---------------------------------------------------------------------------
core::arch::global_asm!(
    r#"
    .text
    .globl flows_swap_min
    .type flows_swap_min,@function
    .align 16
flows_swap_min:
    push %rdi
    push %rbp
    push %rbx
    push %r12
    push %r13
    push %r14
    push %r15
    mov %rsp,(%rdi)
    mov (%rsi),%rsp
    pop %r15
    pop %r14
    pop %r13
    pop %r12
    pop %rbx
    pop %rbp
    pop %rdi
    ret
    .size flows_swap_min,.-flows_swap_min
"#,
    options(att_syntax)
);

// ---------------------------------------------------------------------------
// flows_swap_full — the "fear or ignorance" variant for the §4.3 ablation:
// saves every GPR and the full 512-byte FXSAVE area (x87/SSE state), like
// thread packages built on swapcontext without the signal mask.
//
// Stack layout below the 15 pushed GPRs:
//   [aligned+512] : pre-alignment %rsp (to undo the 16-byte alignment)
//   [aligned+0..512) : FXSAVE image
// The saved stack pointer is `aligned`, so the resume path can fxrstor
// directly from it.
// ---------------------------------------------------------------------------
core::arch::global_asm!(
    r#"
    .text
    .globl flows_swap_full
    .type flows_swap_full,@function
    .align 16
flows_swap_full:
    push %rdi
    push %rbp
    push %rbx
    push %r12
    push %r13
    push %r14
    push %r15
    push %rax
    push %rcx
    push %rdx
    push %rsi
    push %r8
    push %r9
    push %r10
    push %r11
    mov %rsp,%rax
    sub $544,%rsp
    and $-16,%rsp
    mov %rax,512(%rsp)
    fxsave (%rsp)
    mov %rsp,(%rdi)
    mov (%rsi),%rsp
    fxrstor (%rsp)
    mov 512(%rsp),%rsp
    pop %r11
    pop %r10
    pop %r9
    pop %r8
    pop %rsi
    pop %rdx
    pop %rcx
    pop %rax
    pop %r15
    pop %r14
    pop %r13
    pop %r12
    pop %rbx
    pop %rbp
    pop %rdi
    ret
    .size flows_swap_full,.-flows_swap_full
"#,
    options(att_syntax)
);

// ---------------------------------------------------------------------------
// flows_thread_exit_tramp — where a flow's entry function "returns" to.
// Calls the per-OS-thread exit hook, which must never return.
//
// flows_fxsave — helper so initial FULL frames can be seeded with a valid
// FXSAVE image without relying on intrinsics.
// ---------------------------------------------------------------------------
core::arch::global_asm!(
    r#"
    .text
    .globl flows_thread_exit_tramp
    .type flows_thread_exit_tramp,@function
    .align 16
flows_thread_exit_tramp:
    xor %ebp,%ebp
    call flows_arch_on_thread_exit
    ud2
    .size flows_thread_exit_tramp,.-flows_thread_exit_tramp

    .globl flows_fxsave
    .type flows_fxsave,@function
    .align 16
flows_fxsave:
    fxsave (%rdi)
    ret
    .size flows_fxsave,.-flows_fxsave
"#,
    options(att_syntax)
);

extern "C" {
    pub(crate) fn flows_swap_min(old_sp: *mut usize, new_sp: *const usize);
    pub(crate) fn flows_swap_full(old_sp: *mut usize, new_sp: *const usize);
    pub(crate) fn flows_thread_exit_tramp();
    pub(crate) fn flows_fxsave(area: *mut u8);
}

thread_local! {
    static EXIT_HOOK: Cell<Option<fn() -> !>> = const { Cell::new(None) };
}

/// Install the per-OS-thread hook invoked when a flow's entry function
/// returns. The thread package (flows-core) points this at "mark current
/// flow done and swap to the scheduler". The hook must not return.
pub fn set_exit_hook(hook: fn() -> !) {
    EXIT_HOOK.with(|h| h.set(Some(hook)));
}

/// Landing function for the exit trampoline. Never returns.
#[no_mangle]
extern "C" fn flows_arch_on_thread_exit() -> ! {
    let hook = EXIT_HOOK.with(|h| h.get());
    match hook {
        Some(f) => f(),
        None => {
            eprintln!(
                "flows-arch: a flow's entry function returned but no exit \
                 hook is installed on this OS thread; aborting"
            );
            std::process::abort();
        }
    }
}
