//! Properties every strategy must satisfy, checked on random load
//! snapshots.

use flows_lb::{GreedyLb, LbStats, LbStrategy, NullLb, ObjLoad, RefineLb, RotateLb};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_stats() -> impl Strategy<Value = LbStats> {
    (2usize..9, proptest::collection::vec((0.01f64..100.0, any::<bool>()), 0..40)).prop_map(
        |(num_pes, loads)| LbStats {
            num_pes,
            objs: loads
                .into_iter()
                .enumerate()
                .map(|(i, (load, migratable))| ObjLoad {
                    id: i as u64,
                    pe: i % num_pes,
                    load,
                    migratable,
                })
                .collect(),
            background: Vec::new(),
        },
    )
}

fn check_validity(stats: &LbStats, strat: &dyn LbStrategy) -> Result<(), TestCaseError> {
    let migs = strat.decide(stats);
    let mut seen = HashSet::new();
    for m in &migs {
        let obj = stats
            .objs
            .iter()
            .find(|o| o.id == m.obj)
            .ok_or_else(|| TestCaseError::fail(format!("{}: unknown obj {}", strat.name(), m.obj)))?;
        prop_assert!(obj.migratable, "{}: moved pinned obj", strat.name());
        prop_assert_eq!(m.from, obj.pe, "{}: wrong source", strat.name());
        prop_assert!(m.to < stats.num_pes, "{}: bad destination", strat.name());
        prop_assert!(m.from != m.to, "{}: self-migration", strat.name());
        prop_assert!(seen.insert(m.obj), "{}: duplicate decision", strat.name());
    }
    Ok(())
}

proptest! {
    #[test]
    fn all_strategies_emit_valid_decisions(stats in arb_stats()) {
        check_validity(&stats, &NullLb)?;
        check_validity(&stats, &GreedyLb)?;
        check_validity(&stats, &RefineLb::default())?;
        check_validity(&stats, &RotateLb)?;
    }

    #[test]
    fn greedy_meets_the_lpt_makespan_bound(
        mut stats in arb_stats(),
    ) {
        for o in &mut stats.objs {
            o.migratable = true;
        }
        prop_assume!(!stats.objs.is_empty());
        // Classic greedy guarantee: makespan <= average + largest job.
        let total: f64 = stats.objs.iter().map(|o| o.load).sum();
        let avg = total / stats.num_pes as f64;
        let biggest = stats.objs.iter().map(|o| o.load).fold(0.0, f64::max);
        let after_loads = stats.loads_after(&GreedyLb.decide(&stats));
        let after: f64 = after_loads.iter().cloned().fold(0.0, f64::max);
        prop_assert!(after <= avg + biggest + 1e-9, "max {after} vs bound {}", avg + biggest);
    }

    #[test]
    fn refine_never_worsens_max(stats in arb_stats()) {
        let before: f64 = stats.pe_loads().iter().cloned().fold(0.0, f64::max);
        let after_loads = stats.loads_after(&RefineLb::default().decide(&stats));
        let after: f64 = after_loads.iter().cloned().fold(0.0, f64::max);
        prop_assert!(after <= before + 1e-9, "max {before} -> {after}");
    }
}
