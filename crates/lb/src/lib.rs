//! # flows-lb — measurement-based load balancing
//!
//! The paper's motivating use of thread migration is
//! application-independent dynamic load balancing (§1, §4.5, ref [41]):
//! the runtime *measures* each migratable object's load, feeds the
//! database to a strategy, and executes the resulting migrations. This
//! crate holds the strategy side — pure decision procedures over a load
//! snapshot — so they are unit-testable without a machine; `flows-ampi`
//! wires them to real thread migration.
//!
//! Strategies:
//! * [`NullLb`] — do nothing (the "without LB" arm of Figure 12);
//! * [`GreedyLb`] — largest-first placement onto least-loaded PEs
//!   (Charm++'s GreedyLB);
//! * [`RefineLb`] — move objects off overloaded PEs until the maximum is
//!   within a tolerance of the average (Charm++'s RefineLB: fewer
//!   migrations than greedy);
//! * [`RotateLb`] — shift every object to the next PE (a deliberately
//!   naive baseline that stresses migration machinery).

#![warn(missing_docs)]

use std::collections::BinaryHeap;

/// One migratable object's measured load.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjLoad {
    /// Opaque object identity (AMPI rank, chare id, ...).
    pub id: u64,
    /// Where it currently lives.
    pub pe: usize,
    /// Measured load (seconds of CPU in the last epoch, or any consistent
    /// unit).
    pub load: f64,
    /// Whether the runtime can move it.
    pub migratable: bool,
}

/// A snapshot of the machine's measured load.
#[derive(Debug, Clone, Default)]
pub struct LbStats {
    /// Machine size.
    pub num_pes: usize,
    /// Every known object.
    pub objs: Vec<ObjLoad>,
    /// Non-migratable background load per PE (empty = zero).
    pub background: Vec<f64>,
}

/// One migration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Migration {
    /// Which object.
    pub obj: u64,
    /// Source PE (the object's current location).
    pub from: usize,
    /// Destination PE.
    pub to: usize,
}

impl LbStats {
    /// Total load currently on each PE (objects + background).
    pub fn pe_loads(&self) -> Vec<f64> {
        let mut loads = vec![0.0; self.num_pes];
        for (i, b) in self.background.iter().enumerate().take(self.num_pes) {
            loads[i] = *b;
        }
        for o in &self.objs {
            loads[o.pe] += o.load;
        }
        loads
    }

    /// max/avg of the PE loads (1.0 = perfectly balanced). Returns 1.0 for
    /// an empty machine.
    pub fn imbalance(&self) -> f64 {
        let loads = self.pe_loads();
        let total: f64 = loads.iter().sum();
        if total <= 0.0 || loads.is_empty() {
            return 1.0;
        }
        let avg = total / loads.len() as f64;
        loads.iter().cloned().fold(0.0, f64::max) / avg
    }

    /// The PE loads *after* applying `migs` (for strategy evaluation).
    /// Builds an id→load index once, so evaluating a decision costs
    /// O(objs + migs) rather than O(objs × migs).
    pub fn loads_after(&self, migs: &[Migration]) -> Vec<f64> {
        let mut loads = self.pe_loads();
        let by_id: std::collections::HashMap<u64, f64> =
            self.objs.iter().map(|o| (o.id, o.load)).collect();
        for m in migs {
            if let Some(&load) = by_id.get(&m.obj) {
                loads[m.from] -= load;
                loads[m.to] += load;
            }
        }
        loads
    }
}

/// A load-balancing decision procedure.
pub trait LbStrategy {
    /// Strategy name for reports.
    fn name(&self) -> &'static str;
    /// Compute migrations for this snapshot. Must only move migratable
    /// objects, to valid PEs, each object at most once.
    fn decide(&self, stats: &LbStats) -> Vec<Migration>;
}

/// No balancing (the control arm).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullLb;

impl LbStrategy for NullLb {
    fn name(&self) -> &'static str {
        "NullLB"
    }

    fn decide(&self, _stats: &LbStats) -> Vec<Migration> {
        Vec::new()
    }
}

/// Largest-task-first onto the least-loaded PE. Ignores current placement
/// (may migrate heavily); excellent final balance.
#[derive(Debug, Default, Clone, Copy)]
pub struct GreedyLb;

#[derive(PartialEq)]
struct MinPe(f64, usize);
impl Eq for MinPe {}
impl Ord for MinPe {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the least-loaded PE.
        other
            .0
            .partial_cmp(&self.0)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.1.cmp(&self.1))
    }
}
impl PartialOrd for MinPe {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl LbStrategy for GreedyLb {
    fn name(&self) -> &'static str {
        "GreedyLB"
    }

    fn decide(&self, stats: &LbStats) -> Vec<Migration> {
        if stats.num_pes == 0 {
            return Vec::new();
        }
        let mut heap: BinaryHeap<MinPe> = (0..stats.num_pes)
            .map(|p| MinPe(stats.background.get(p).copied().unwrap_or(0.0), p))
            .collect();
        // Non-migratable objects stay put and count as background.
        let mut pinned = vec![0.0; stats.num_pes];
        for o in stats.objs.iter().filter(|o| !o.migratable) {
            pinned[o.pe] += o.load;
        }
        if pinned.iter().any(|&x| x > 0.0) {
            let mut rebuilt = BinaryHeap::new();
            for MinPe(l, p) in heap.drain() {
                rebuilt.push(MinPe(l + pinned[p], p));
            }
            heap = rebuilt;
        }
        let mut movable: Vec<&ObjLoad> = stats.objs.iter().filter(|o| o.migratable).collect();
        movable.sort_by(|a, b| {
            b.load
                .partial_cmp(&a.load)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.id.cmp(&b.id))
        });
        let mut migs = Vec::new();
        for o in movable {
            let MinPe(l, p) = heap.pop().expect("num_pes > 0");
            heap.push(MinPe(l + o.load, p));
            if p != o.pe {
                migs.push(Migration {
                    obj: o.id,
                    from: o.pe,
                    to: p,
                });
            }
        }
        migs
    }
}

/// Move objects off overloaded PEs until `max <= tolerance * avg`, taking
/// the smallest object that fixes each overload first — few migrations.
#[derive(Debug, Clone, Copy)]
pub struct RefineLb {
    /// Overload tolerance (e.g. 1.05 = within 5% of average).
    pub tolerance: f64,
}

impl Default for RefineLb {
    fn default() -> Self {
        RefineLb { tolerance: 1.05 }
    }
}

impl LbStrategy for RefineLb {
    fn name(&self) -> &'static str {
        "RefineLB"
    }

    fn decide(&self, stats: &LbStats) -> Vec<Migration> {
        if stats.num_pes == 0 || stats.objs.is_empty() {
            return Vec::new();
        }
        let mut loads = stats.pe_loads();
        let avg: f64 = loads.iter().sum::<f64>() / loads.len() as f64;
        let limit = self.tolerance * avg;
        // Mutable view of placements.
        let mut place: Vec<(usize, &ObjLoad)> =
            stats.objs.iter().map(|o| (o.pe, o)).collect();
        let mut migs: Vec<Migration> = Vec::new();
        for _round in 0..stats.objs.len() {
            let (donor, &dload) = loads
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty");
            if dload <= limit {
                break;
            }
            let (recipient, &rload) = loads
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                .expect("non-empty");
            // The smallest migratable object on the donor whose move helps;
            // an object moves at most once per decision round (its `from`
            // must remain its real current location).
            let moved: std::collections::HashSet<u64> =
                migs.iter().map(|m| m.obj).collect();
            let candidate = place
                .iter_mut()
                .filter(|(pe, o)| *pe == donor && o.migratable && !moved.contains(&o.id))
                .min_by(|a, b| {
                    a.1.load
                        .partial_cmp(&b.1.load)
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
            let Some(slot) = candidate else { break };
            // Moving must not just swap the overload to the recipient.
            if rload + slot.1.load >= dload {
                break;
            }
            loads[donor] -= slot.1.load;
            loads[recipient] += slot.1.load;
            migs.push(Migration {
                obj: slot.1.id,
                from: donor,
                to: recipient,
            });
            slot.0 = recipient;
        }
        migs
    }
}

/// Shift every migratable object to the next PE. Terrible balancing,
/// great migration-machinery exercise.
#[derive(Debug, Default, Clone, Copy)]
pub struct RotateLb;

impl LbStrategy for RotateLb {
    fn name(&self) -> &'static str {
        "RotateLB"
    }

    fn decide(&self, stats: &LbStats) -> Vec<Migration> {
        if stats.num_pes < 2 {
            return Vec::new();
        }
        stats
            .objs
            .iter()
            .filter(|o| o.migratable)
            .map(|o| Migration {
                obj: o.id,
                from: o.pe,
                to: (o.pe + 1) % stats.num_pes,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(num_pes: usize, loads: &[(u64, usize, f64)]) -> LbStats {
        LbStats {
            num_pes,
            objs: loads
                .iter()
                .map(|&(id, pe, load)| ObjLoad {
                    id,
                    pe,
                    load,
                    migratable: true,
                })
                .collect(),
            background: Vec::new(),
        }
    }

    #[test]
    fn imbalance_metric() {
        let s = stats(2, &[(0, 0, 3.0), (1, 0, 1.0)]);
        assert_eq!(s.pe_loads(), vec![4.0, 0.0]);
        assert_eq!(s.imbalance(), 2.0);
        let balanced = stats(2, &[(0, 0, 2.0), (1, 1, 2.0)]);
        assert!((balanced.imbalance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_does_nothing() {
        let s = stats(4, &[(0, 0, 10.0), (1, 0, 10.0)]);
        assert!(NullLb.decide(&s).is_empty());
    }

    #[test]
    fn greedy_balances_skewed_load() {
        // 8 objects all on PE0 of 4 PEs.
        let objs: Vec<_> = (0..8).map(|i| (i as u64, 0usize, 1.0 + i as f64)).collect();
        let s = stats(4, &objs);
        let migs = GreedyLb.decide(&s);
        let after = s.loads_after(&migs);
        let max = after.iter().cloned().fold(0.0, f64::max);
        let avg: f64 = after.iter().sum::<f64>() / 4.0;
        assert!(max / avg < 1.35, "greedy should land near balance: {after:?}");
        // Every decision is valid.
        for m in &migs {
            assert!(m.to < 4);
            assert_ne!(m.from, m.to);
        }
    }

    #[test]
    fn greedy_respects_pins() {
        let mut s = stats(2, &[(0, 0, 100.0), (1, 0, 1.0), (2, 0, 1.0)]);
        s.objs[0].migratable = false; // the whale is pinned on PE0
        let migs = GreedyLb.decide(&s);
        assert!(migs.iter().all(|m| m.obj != 0), "pinned object never moves");
        let after = s.loads_after(&migs);
        assert_eq!(after[1], 2.0, "both minnows flee to PE1");
    }

    #[test]
    fn refine_moves_little_when_nearly_balanced() {
        let s = stats(
            2,
            &[(0, 0, 5.0), (1, 0, 5.1), (2, 1, 5.0), (3, 1, 5.05)],
        );
        let migs = RefineLb::default().decide(&s);
        assert!(migs.is_empty(), "within tolerance: {migs:?}");
    }

    #[test]
    fn refine_fixes_hotspot_with_few_moves() {
        let mut objs: Vec<_> = (0..4u64).map(|i| (i, 0usize, 2.0)).collect();
        objs.extend((4..8u64).map(|i| (i, 1usize, 0.5)));
        let s = stats(2, &objs);
        let migs = RefineLb { tolerance: 1.1 }.decide(&s);
        assert!(!migs.is_empty());
        assert!(
            migs.len() <= 2,
            "refine should fix this with at most 2 moves: {migs:?}"
        );
        let after = s.loads_after(&migs);
        let avg: f64 = after.iter().sum::<f64>() / 2.0;
        let max = after.iter().cloned().fold(0.0, f64::max);
        assert!(max / avg <= 1.25, "{after:?}");
    }

    #[test]
    fn rotate_shifts_everything() {
        let s = stats(3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let migs = RotateLb.decide(&s);
        assert_eq!(migs.len(), 3);
        assert!(migs.iter().all(|m| m.to == (m.from + 1) % 3));
        // Single PE: nowhere to rotate.
        let s1 = stats(1, &[(0, 0, 1.0)]);
        assert!(RotateLb.decide(&s1).is_empty());
    }

    #[test]
    fn loads_after_matches_linear_scan() {
        // The indexed implementation must agree with the obvious
        // quadratic one, including unknown object ids (ignored).
        let objs: Vec<_> = (0..50u64).map(|i| (i, (i % 4) as usize, 0.5 + i as f64)).collect();
        let s = stats(4, &objs);
        let migs: Vec<Migration> = (0..50u64)
            .step_by(3)
            .map(|i| Migration {
                obj: i,
                from: (i % 4) as usize,
                to: ((i + 1) % 4) as usize,
            })
            .chain(std::iter::once(Migration {
                obj: 999, // unknown id: must be ignored, not panic
                from: 0,
                to: 1,
            }))
            .collect();
        let fast = s.loads_after(&migs);
        let mut slow = s.pe_loads();
        for m in &migs {
            if let Some(o) = s.objs.iter().find(|o| o.id == m.obj) {
                slow[m.from] -= o.load;
                slow[m.to] += o.load;
            }
        }
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-9, "{fast:?} vs {slow:?}");
        }
    }

    #[test]
    fn empty_machine_and_empty_objs_are_fine() {
        for strat in [&GreedyLb as &dyn LbStrategy, &RefineLb::default(), &RotateLb] {
            let s = LbStats {
                num_pes: 3,
                objs: Vec::new(),
                background: Vec::new(),
            };
            assert!(strat.decide(&s).is_empty(), "{}", strat.name());
        }
    }
}
