//! Fixture tests for the v2 symbol-graph rules: each must fire on a
//! seeded violation, stay quiet on the compliant twin, and respect a
//! waiver. Fixtures are inline string literals — the lexer blanks
//! string contents, so linting this workspace does not see the seeded
//! violations inside these tests.

use flows_check::{lint_sources, Finding, Rule};

fn lint_at(path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_string(), src.to_string())])
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().filter_map(|f| f.rule).collect()
}

// ---- rule 5: migration-image-closure ----

#[test]
fn pr6_clone_hashmap_reachable_from_rankbox_fires() {
    // The literal shape of the PR-6 bug: per-sender protocol state in a
    // RandomState HashMap directly inside the migration image. RankBox
    // is a fixed closure root — no annotation needed.
    let src = "use std::collections::HashMap;\n\
               pub struct RankBox {\n\
               \x20   pub rank: u64,\n\
               \x20   pub next_seq: HashMap<u64, u64>,\n\
               }\n";
    let f = lint_at("crates/ampi/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::MigrationImageClosure]);
    assert_eq!(f[0].line, 4, "finding lands on the offending field");
    assert!(f[0].msg.contains("HashMap"), "{}", f[0].msg);
}

#[test]
fn closure_is_transitive_through_workspace_types() {
    // The banned type is two hops from the root — the whole point of
    // the symbol graph over the old per-line scan.
    let src = "pub struct RankBox {\n\
               \x20   pub inner: Inner,\n\
               }\n\
               pub struct Inner {\n\
               \x20   pub guard: std::sync::Mutex<u64>,\n\
               }\n";
    let f = lint_at("crates/ampi/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::MigrationImageClosure]);
    assert_eq!(f[0].line, 5);
    assert!(f[0].msg.contains("Mutex"), "{}", f[0].msg);
}

#[test]
fn annotated_root_pulls_type_into_the_image() {
    let src = "// flows-image: root\n\
               pub struct Snapshot {\n\
               \x20   pub fd: std::os::fd::OwnedFd,\n\
               }\n";
    let f = lint_at("crates/mem/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::MigrationImageClosure]);
}

#[test]
fn closure_clean_on_migratable_fields() {
    let src = "pub struct RankBox {\n\
               \x20   pub rank: u64,\n\
               \x20   pub mail: Vec<Entry>,\n\
               \x20   pub next_seq: Vec<(u64, u64)>,\n\
               }\n\
               pub struct Entry {\n\
               \x20   pub tag: u64,\n\
               \x20   pub bytes: Vec<u8>,\n\
               }\n";
    assert!(lint_at("crates/ampi/src/x.rs", src).is_empty());
}

#[test]
fn closure_waiver_suppresses_the_field() {
    let src = "use std::collections::HashMap;\n\
               pub struct RankBox {\n\
               \x20   // flowslint::allow(migration-image-closure): rebuilt from\n\
               \x20   // the sorted pair list on unpack, never shipped.\n\
               \x20   pub cache: HashMap<u64, u64>,\n\
               }\n";
    assert!(lint_at("crates/ampi/src/x.rs", src).is_empty());
}

#[test]
fn opaque_type_is_not_descended() {
    let src = "// flows-image: root\n\
               pub struct Image {\n\
               \x20   pub blob: Blob,\n\
               }\n\
               // flows-image: opaque — hand-written Pup ships bytes only; the\n\
               // pool handle is re-bound on unpack.\n\
               pub struct Blob {\n\
               \x20   pub pool: std::sync::Mutex<u64>,\n\
               }\n";
    assert!(lint_at("crates/mem/src/x.rs", src).is_empty());
}

#[test]
fn opaque_without_reason_is_a_meta_finding() {
    let src = "// flows-image: opaque\n\
               pub struct Blob {\n\
               \x20   pub x: u64,\n\
               }\n";
    let f = lint_at("crates/mem/src/x.rs", src);
    assert_eq!(f.len(), 1);
    assert!(f[0].rule.is_none(), "meta-finding, not a rule hit");
}

// ---- rule 6: atomic-protocol ----

#[test]
fn relaxed_full_publish_fires() {
    // The acceptance-criteria fixture: a FULL-flag publish with Relaxed
    // ordering — the consumer's Acquire cannot synchronize with it.
    let src = "use std::sync::atomic::{AtomicU32, Ordering};\n\
               pub fn send(flag: &AtomicU32) {\n\
               \x20   flag.store(1, Ordering::Relaxed); // flows-atomic: publishes slot-full\n\
               }\n\
               pub fn recv(flag: &AtomicU32) -> bool {\n\
               \x20   flag.load(Ordering::Acquire) == 1 // flows-atomic: consumes slot-full\n\
               }\n";
    let f = lint_at("crates/net/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::AtomicProtocol]);
    assert_eq!(f[0].line, 3);
    assert!(f[0].msg.contains("Release"), "{}", f[0].msg);
}

#[test]
fn release_acquire_pair_is_clean() {
    let src = "use std::sync::atomic::{AtomicU32, Ordering};\n\
               pub fn send(flag: &AtomicU32) {\n\
               \x20   flag.store(1, Ordering::Release); // flows-atomic: publishes slot-full\n\
               }\n\
               pub fn recv(flag: &AtomicU32) -> bool {\n\
               \x20   flag.load(Ordering::Acquire) == 1 // flows-atomic: consumes slot-full\n\
               }\n";
    assert!(lint_at("crates/net/src/x.rs", src).is_empty());
}

#[test]
fn waived_relaxed_site_is_clean_and_still_pairs() {
    // The waiver blesses the ordering; the site still counts for
    // pairing, so the Acquire side must not report an unpaired tag.
    let src = "use std::sync::atomic::{AtomicU32, Ordering};\n\
               pub fn send(flag: &AtomicU32) {\n\
               \x20   // flowslint::allow(atomic-protocol): the counter itself is\n\
               \x20   // the only datum; no side data rides this flag.\n\
               \x20   flag.store(1, Ordering::Relaxed); // flows-atomic: publishes ticks\n\
               }\n\
               pub fn recv(flag: &AtomicU32) -> u32 {\n\
               \x20   flag.load(Ordering::Acquire) // flows-atomic: consumes ticks\n\
               }\n";
    assert!(lint_at("crates/net/src/x.rs", src).is_empty());
}

#[test]
fn unpaired_tags_fire_on_both_sides() {
    let publish_only = "use std::sync::atomic::{AtomicU32, Ordering};\n\
                        pub fn send(flag: &AtomicU32) {\n\
                        \x20   flag.store(1, Ordering::Release); // flows-atomic: publishes orphan\n\
                        }\n";
    let f = lint_at("crates/net/src/x.rs", publish_only);
    assert_eq!(rules_of(&f), vec![Rule::AtomicProtocol]);
    assert!(f[0].msg.contains("no site consumes"), "{}", f[0].msg);

    let consume_only = "use std::sync::atomic::{AtomicU32, Ordering};\n\
                        pub fn recv(flag: &AtomicU32) -> u32 {\n\
                        \x20   flag.load(Ordering::Acquire) // flows-atomic: consumes orphan\n\
                        }\n";
    let f = lint_at("crates/net/src/x.rs", consume_only);
    assert_eq!(rules_of(&f), vec![Rule::AtomicProtocol]);
    assert!(f[0].msg.contains("unpaired acquire"), "{}", f[0].msg);
}

#[test]
fn annotation_covering_no_atomic_op_fires() {
    let src = "pub fn noop(x: u64) -> u64 {\n\
               \x20   x + 1 // flows-atomic: publishes nothing-here\n\
               }\n\
               pub fn peer(flag: &std::sync::atomic::AtomicU32) -> u32 {\n\
               \x20   flag.load(std::sync::atomic::Ordering::Acquire) // flows-atomic: consumes nothing-here\n\
               }\n";
    let f = lint_at("crates/net/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::AtomicProtocol]);
    assert!(f[0].msg.contains("no atomic publish operation"), "{}", f[0].msg);
}

// ---- rule 7: wire-exhaustive ----

#[test]
fn unmatched_const_message_fires() {
    let src = "// flows-wire: defines toy\n\
               pub mod toy {\n\
               \x20   pub const PING: u8 = 1;\n\
               \x20   pub const PONG: u8 = 2;\n\
               }\n\
               // flows-wire: handles toy\n\
               pub fn pump(k: u8) {\n\
               \x20   match k {\n\
               \x20       x if x == toy::PING => {}\n\
               \x20       _ => {}\n\
               \x20   }\n\
               }\n";
    let f = lint_at("crates/net/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::WireExhaustive]);
    assert_eq!(f[0].line, 4, "finding lands on the unmatched message");
    assert!(f[0].msg.contains("PONG"), "{}", f[0].msg);
}

#[test]
fn fully_matched_protocol_is_clean() {
    let src = "// flows-wire: defines toy\n\
               pub mod toy {\n\
               \x20   pub const PING: u8 = 1;\n\
               \x20   pub const PONG: u8 = 2;\n\
               }\n\
               // flows-wire: handles toy\n\
               pub fn pump(k: u8) {\n\
               \x20   if k == toy::PING {\n\
               \x20       return;\n\
               \x20   }\n\
               \x20   match k {\n\
               \x20       x if x == toy::PONG => {}\n\
               \x20       _ => {}\n\
               \x20   }\n\
               }\n";
    assert!(lint_at("crates/net/src/x.rs", src).is_empty());
}

#[test]
fn waived_message_is_clean() {
    let src = "// flows-wire: defines toy\n\
               pub mod toy {\n\
               \x20   pub const PING: u8 = 1;\n\
               \x20   // flowslint::allow(wire-exhaustive): send-only probe tag,\n\
               \x20   // answered by the peer's PING.\n\
               \x20   pub const PONG: u8 = 2;\n\
               }\n\
               // flows-wire: handles toy\n\
               pub fn pump(k: u8) {\n\
               \x20   if k == toy::PING {}\n\
               }\n";
    assert!(lint_at("crates/net/src/x.rs", src).is_empty());
}

#[test]
fn enum_variant_protocol_is_checked() {
    let clean = "// flows-wire: defines ev\n\
                 pub enum Ev {\n\
                 \x20   Ping,\n\
                 \x20   Pong,\n\
                 }\n\
                 // flows-wire: handles ev\n\
                 pub fn pump(e: Ev) {\n\
                 \x20   match e {\n\
                 \x20       Ev::Ping => {}\n\
                 \x20       Ev::Pong => {}\n\
                 \x20   }\n\
                 }\n";
    assert!(lint_at("crates/net/src/x.rs", clean).is_empty());

    let missing = "// flows-wire: defines ev\n\
                   pub enum Ev {\n\
                   \x20   Ping,\n\
                   \x20   Pong,\n\
                   }\n\
                   // flows-wire: handles ev\n\
                   pub fn pump(e: Ev) {\n\
                   \x20   match e {\n\
                   \x20       Ev::Ping => {}\n\
                   \x20       _ => {}\n\
                   \x20   }\n\
                   }\n";
    let f = lint_at("crates/net/src/x.rs", missing);
    assert_eq!(rules_of(&f), vec![Rule::WireExhaustive]);
    assert!(f[0].msg.contains("Pong"), "{}", f[0].msg);
}

#[test]
fn protocol_without_any_handler_fires() {
    let src = "// flows-wire: defines toy\n\
               pub mod toy {\n\
               \x20   pub const PING: u8 = 1;\n\
               }\n";
    let f = lint_at("crates/net/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::WireExhaustive]);
    assert!(f[0].msg.contains("no fn is annotated"), "{}", f[0].msg);
}

#[test]
fn handler_for_unknown_protocol_fires() {
    let src = "// flows-wire: handles ghost\n\
               pub fn pump(k: u8) {\n\
               \x20   let _ = k;\n\
               }\n";
    let f = lint_at("crates/net/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::WireExhaustive]);
    assert!(f[0].msg.contains("unknown protocol"), "{}", f[0].msg);
}

// ---- cross-file: the graph spans the whole scan set ----

#[test]
fn protocol_defined_and_handled_in_different_files() {
    let defs = "// flows-wire: defines xf\n\
                pub mod xf {\n\
                \x20   pub const A: u8 = 1;\n\
                }\n";
    let handler = "// flows-wire: handles xf\n\
                   pub fn pump(k: u8) {\n\
                   \x20   if k == crate::xf::A {}\n\
                   }\n";
    let f = lint_sources(&[
        ("crates/net/src/proto.rs".to_string(), defs.to_string()),
        ("crates/net/src/pump.rs".to_string(), handler.to_string()),
    ]);
    assert!(f.is_empty(), "{f:?}");
}

// ---- report output is well-formed JSON ----

/// A tiny recursive-descent JSON syntax checker — enough to guarantee
/// the hand-rolled emitters never produce malformed output.
fn json_value(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    match b.get(*i) {
        Some(b'{') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b'}') {
                *i += 1;
                return Ok(());
            }
            loop {
                json_string(b, i)?;
                skip_ws(b, i);
                expect(b, i, b':')?;
                json_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b'}') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("bad object at {i:?}: {other:?}")),
                }
            }
        }
        Some(b'[') => {
            *i += 1;
            skip_ws(b, i);
            if b.get(*i) == Some(&b']') {
                *i += 1;
                return Ok(());
            }
            loop {
                json_value(b, i)?;
                skip_ws(b, i);
                match b.get(*i) {
                    Some(b',') => *i += 1,
                    Some(b']') => {
                        *i += 1;
                        return Ok(());
                    }
                    other => return Err(format!("bad array at {i:?}: {other:?}")),
                }
            }
        }
        Some(b'"') => json_string(b, i),
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            while b
                .get(*i)
                .is_some_and(|c| c.is_ascii_digit() || b"+-.eE".contains(c))
            {
                *i += 1;
            }
            Ok(())
        }
        Some(_) => {
            for lit in ["true", "false", "null"] {
                if b[*i..].starts_with(lit.as_bytes()) {
                    *i += lit.len();
                    return Ok(());
                }
            }
            Err(format!("bad value at byte {i:?}"))
        }
        None => Err("unexpected end".into()),
    }
}

fn json_string(b: &[u8], i: &mut usize) -> Result<(), String> {
    skip_ws(b, i);
    expect(b, i, b'"')?;
    while let Some(&c) = b.get(*i) {
        match c {
            b'"' => {
                *i += 1;
                return Ok(());
            }
            b'\\' => *i += 2,
            _ => *i += 1,
        }
    }
    Err("unterminated string".into())
}

fn skip_ws(b: &[u8], i: &mut usize) {
    while b.get(*i).is_some_and(u8::is_ascii_whitespace) {
        *i += 1;
    }
}

fn expect(b: &[u8], i: &mut usize, want: u8) -> Result<(), String> {
    if b.get(*i) == Some(&want) {
        *i += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", want as char, i))
    }
}

fn assert_valid_json(s: &str) {
    let b = s.as_bytes();
    let mut i = 0;
    json_value(b, &mut i).unwrap_or_else(|e| panic!("{e}\n--- in ---\n{s}"));
    skip_ws(b, &mut i);
    assert_eq!(i, b.len(), "trailing garbage after JSON document");
}

#[test]
fn sarif_and_json_reports_are_valid_json() {
    // With findings (the Relaxed-publish fixture fires)…
    let src = "use std::sync::atomic::{AtomicU32, Ordering};\n\
               pub fn send(flag: &AtomicU32) {\n\
               \x20   flag.store(1, Ordering::Relaxed); // flows-atomic: publishes slot-full\n\
               }\n\
               pub fn recv(flag: &AtomicU32) -> bool {\n\
               \x20   flag.load(Ordering::Acquire) == 1 // flows-atomic: consumes slot-full\n\
               }\n";
    let f = lint_at("crates/net/src/\"quoted\\path\".rs", src);
    assert!(!f.is_empty());
    assert_valid_json(&flows_check::report::to_sarif(&f));
    assert_valid_json(&flows_check::report::to_json(&f, 1));

    // …and over the real workspace (empty result set, full rule table).
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root two levels up");
    let (wf, scanned) = flows_check::lint_workspace(root).expect("scan");
    let sarif = flows_check::report::to_sarif(&wf);
    assert_valid_json(&sarif);
    assert!(sarif.contains("\"version\": \"2.1.0\""));
    for r in Rule::ALL {
        assert!(sarif.contains(r.id()), "rule table lists {}", r.id());
    }
    assert_valid_json(&flows_check::report::to_json(&wf, scanned));
}

// ---- coverage pins: the files the v2 rules exist for stay in scope ----

#[test]
fn annotated_hotspots_stay_annotated() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root two levels up");
    for (file, needle) in [
        ("crates/net/src/shm.rs", "flows-atomic: publishes shm-slot-full"),
        ("crates/net/src/shm.rs", "flows-atomic: consumes shm-slot-full"),
        ("crates/core/src/steal.rs", "flows-atomic: publishes steal-inbox"),
        ("crates/core/src/steal.rs", "flows-atomic: consumes steal-inbox"),
        ("crates/net/src/frame.rs", "flows-wire: defines net-ctrl"),
        ("crates/converse/src/netpump.rs", "flows-wire: handles net-ctrl"),
        ("crates/ampi/src/proto.rs", "flows-wire: defines ampi-ctl"),
        ("crates/ampi/src/recover.rs", "flows-wire: handles ampi-ctl"),
        ("crates/core/src/migrate.rs", "flows-image: root"),
        ("crates/ampi/src/proto.rs", "flows-image: root"),
    ] {
        let text = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("{file} left the tree: {e}"));
        assert!(
            text.contains(needle),
            "{file} lost its `{needle}` annotation — the concurrency-protocol \
             coverage this lint exists for would silently vanish"
        );
    }
}

#[test]
fn hotspot_files_lint_clean_in_isolation() {
    // The files the v2 rules were built for (slot ring, steal mesh,
    // deferred reclaim) must stay in the scan set and individually
    // clean — a rename or an unwaived regression here fails loudly.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root two levels up");
    for file in [
        "crates/net/src/shm.rs",
        "crates/core/src/steal.rs",
        "crates/mem/src/reclaim.rs",
    ] {
        let text = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("{file} left the tree — update this pin: {e}"));
        // Cross-file pairings (wire handlers, atomic peers) live in
        // other files, so only closure/per-file correctness is checked
        // here; full-workspace cleanliness is asserted separately.
        let f = lint_sources(&[(file.to_string(), text)])
            .into_iter()
            .filter(|f| f.rule == Some(Rule::MigrationImageClosure))
            .collect::<Vec<_>>();
        assert!(f.is_empty(), "{file} has unwaived closure findings: {f:?}");
    }
}
