//! Fixture tests: each rule must fire on a seeded violation and stay
//! quiet on the compliant twin. Fixtures are inline string literals —
//! the lexer blanks string contents, so linting this workspace does not
//! see the seeded violations inside these tests.

use flows_check::{lint_sources, Finding, Rule};

fn lint_at(path: &str, src: &str) -> Vec<Finding> {
    lint_sources(&[(path.to_string(), src.to_string())])
}

fn rules_of(findings: &[Finding]) -> Vec<Rule> {
    findings.iter().filter_map(|f| f.rule).collect()
}

// ---- rule 1: unsafe-safety-comment ----

#[test]
fn unsafe_without_safety_comment_fires() {
    let src = "pub fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n";
    let f = lint_at("crates/mem/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::UnsafeSafetyComment]);
    assert_eq!(f[0].line, 2);
}

#[test]
fn unsafe_with_safety_comment_is_clean() {
    let src = "pub fn f(p: *mut u8) {\n    // SAFETY: caller contract.\n    unsafe { *p = 0 };\n}\n";
    assert!(lint_at("crates/mem/src/x.rs", src).is_empty());
}

#[test]
fn unsafe_fn_with_safety_doc_section_is_clean() {
    let src = "/// Does things.\n///\n/// # Safety\n/// `p` must be valid.\npub unsafe fn f(p: *mut u8) {}\n";
    assert!(lint_at("crates/mem/src/x.rs", src).is_empty());
}

#[test]
fn safety_comment_reaches_through_attributes() {
    let src = "// SAFETY: zeroed mask is valid.\n#[allow(dead_code)]\nunsafe fn g() {}\n";
    assert!(lint_at("crates/arch/src/x.rs", src).is_empty());
}

#[test]
fn unsafe_in_string_or_comment_is_ignored() {
    let src = "// this mentions unsafe code\nlet s = \"unsafe { }\";\n";
    assert!(lint_at("crates/mem/src/x.rs", src).is_empty());
}

#[test]
fn same_line_safety_comment_counts() {
    let src = "let v = unsafe { read() }; // SAFETY: just written above.\n";
    assert!(lint_at("crates/mem/src/x.rs", src).is_empty());
}

// ---- rule 2: no-global-state ----

#[test]
fn static_mut_in_migratable_crate_fires() {
    let src = "static mut COUNTER: u64 = 0;\n";
    for krate in ["core", "ampi", "npb", "chare"] {
        let f = lint_at(&format!("crates/{krate}/src/x.rs"), src);
        assert_eq!(rules_of(&f), vec![Rule::NoGlobalState], "crate {krate}");
    }
}

#[test]
fn thread_local_in_migratable_crate_fires() {
    let src = "thread_local! {\n    static X: u64 = 0;\n}\n";
    let f = lint_at("crates/ampi/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::NoGlobalState]);
}

#[test]
fn global_state_allowed_outside_migratable_crates() {
    let src = "static mut SCRATCH: u64 = 0;\nthread_local! { static Y: u8 = 0; }\n";
    assert!(lint_at("crates/sys/src/x.rs", src).is_empty());
    assert!(lint_at("crates/trace/src/x.rs", src).is_empty());
}

#[test]
fn privatize_rs_is_exempt() {
    let src = "thread_local! { static ACTIVE: usize = 0; }\n";
    assert!(lint_at("crates/core/src/privatize.rs", src).is_empty());
}

#[test]
fn plain_static_is_fine() {
    let src = "static NEXT: u64 = 1;\nlet static_mutation = 0;\n";
    assert!(lint_at("crates/core/src/x.rs", src).is_empty());
}

// ---- rule 3: pup-raw-pointer ----

#[test]
fn raw_pointer_field_in_pup_type_fires() {
    let src = "struct Packet {\n    data: *mut u8,\n    len: usize,\n}\nimpl Pup for Packet {\n    fn pup(&mut self, p: &mut Puper) {}\n}\n";
    let f = lint_at("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::PupRawPointer]);
    assert_eq!(f[0].line, 2);
}

#[test]
fn pup_fields_macro_marks_type() {
    let src = "struct Head {\n    base: *const u8,\n}\npup_fields!(Head { base });\n";
    let f = lint_at("crates/mem/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::PupRawPointer]);
}

#[test]
fn impl_and_struct_in_different_files_still_fire() {
    let a = ("crates/core/src/a.rs".to_string(), "pub struct W {\n    p: *mut u8,\n}\n".to_string());
    let b = ("crates/core/src/b.rs".to_string(), "impl flows_pup::Pup for W {\n    fn pup(&mut self, p: &mut Puper) {}\n}\n".to_string());
    let f = lint_sources(&[a, b]);
    assert_eq!(rules_of(&f), vec![Rule::PupRawPointer]);
}

#[test]
fn raw_pointer_in_non_pup_type_is_fine() {
    let src = "struct Cache {\n    hot: *mut u8,\n}\n";
    assert!(lint_at("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn pup_type_without_raw_pointers_is_fine() {
    let src = "struct Head {\n    off: u64,\n}\npup_fields!(Head { off });\n";
    assert!(lint_at("crates/mem/src/x.rs", src).is_empty());
}

#[test]
fn tuple_struct_raw_pointer_fires() {
    let src = "struct P(*mut u8);\nimpl Pup for P { fn pup(&mut self, _: &mut Puper) {} }\n";
    let f = lint_at("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::PupRawPointer]);
}

// ---- rule 4: no-direct-libc ----

#[test]
fn libc_outside_sys_fires() {
    let src = "fn now() -> i64 {\n    unsafe { libc::time(std::ptr::null_mut()) }\n}\n";
    let f = lint_at("crates/mech/src/x.rs", src);
    // Both the missing SAFETY comment and the libc call are real findings;
    // the libc one must be among them.
    assert!(rules_of(&f).contains(&Rule::NoDirectLibc));
}

#[test]
fn libc_inside_sys_is_fine() {
    let src = "// SAFETY: no preconditions.\nlet t = unsafe { libc::time(std::ptr::null_mut()) };\n";
    assert!(lint_at("crates/sys/src/x.rs", src).is_empty());
}

#[test]
fn libc_in_comment_or_string_is_ignored() {
    let src = "// calls libc::time under the hood\nlet s = \"libc::getpid\";\n";
    assert!(lint_at("crates/mech/src/x.rs", src).is_empty());
}

#[test]
fn libc_in_slot_memory_layer_fires() {
    // The windowed-alias / deferred-reclaim code is exactly where a
    // stray direct syscall would silently break the SyscallCounts
    // invariants the fast-path tests rely on — pin the rule to those
    // files so a refactor can't carve them out of coverage.
    let src = "fn punch() {\n    // SAFETY: fd is owned.\n    unsafe { libc::fallocate(3, 0, 0, 0) };\n}\n";
    for path in ["crates/mem/src/alias.rs", "crates/mem/src/reclaim.rs"] {
        let f = lint_at(path, src);
        assert!(
            rules_of(&f).contains(&Rule::NoDirectLibc),
            "{path} must be covered by no-direct-libc"
        );
    }
}

#[test]
fn steal_and_adoption_files_stay_covered() {
    // Stolen threads cross PEs as packed bytes and adopt slots on the
    // thief — exactly the code where a raw-pointer pup field, stray
    // global, or uncommented unsafe would corrupt another PE's memory.
    // Pin the steal/adoption files so a refactor can't carve them out
    // of lint coverage.
    let unsafe_src = "pub fn f(p: *mut u8) {\n    unsafe { *p = 0 };\n}\n";
    let global_src = "static mut PENDING: u64 = 0;\n";
    let pup_src = "struct Hdr {\n    base: *mut u8,\n}\npup_fields!(Hdr { base });\n";
    for path in [
        "crates/core/src/steal.rs",
        "crates/core/src/migrate.rs",
        "crates/mem/src/reclaim.rs",
    ] {
        let f = lint_at(path, unsafe_src);
        assert!(
            rules_of(&f).contains(&Rule::UnsafeSafetyComment),
            "{path} must be covered by unsafe-safety-comment"
        );
        let f = lint_at(path, pup_src);
        assert!(
            rules_of(&f).contains(&Rule::PupRawPointer),
            "{path} must be covered by pup-raw-pointer"
        );
    }
    // The steal mesh lives in a migratable crate: per-PE request words
    // must ride in shared state, never in file-scope globals.
    let f = lint_at("crates/core/src/steal.rs", global_src);
    assert!(rules_of(&f).contains(&Rule::NoGlobalState));
}

// ---- waivers ----

#[test]
fn line_waiver_suppresses_next_code_line() {
    let src = "// flowslint::allow(no-direct-libc): benchmark child, by design.\nlet t = unsafe { libc::fork() }; // SAFETY: test\n";
    assert!(lint_at("crates/mech/src/x.rs", src).is_empty());
}

#[test]
fn file_waiver_suppresses_everywhere() {
    let src = "// flowslint::allow-file(no-global-state): scheduler identity is per-OS-thread.\nfn a() {}\nthread_local! { static S: u8 = 0; }\n";
    assert!(lint_at("crates/core/src/x.rs", src).is_empty());
}

#[test]
fn waiver_for_one_rule_does_not_hide_another() {
    let src = "// flowslint::allow(no-direct-libc)\nstatic mut X: u64 = 0;\n";
    let f = lint_at("crates/core/src/x.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::NoGlobalState]);
}

// ---- flows-net coverage pins ----
//
// The transport layer is the one place syscall-heavy code (memfd rings,
// futex parking, sockets) lives *outside* flows-sys, so pin two things:
// the rules fire on flows-net paths exactly as anywhere else, and the
// real crates/net sources are inside the workspace scan set (a rename or
// walker change silently dropping them would void the first guarantee).

#[test]
fn net_files_direct_libc_fires() {
    let src = "pub fn park() {\n    let r = unsafe { libc::syscall(0) }; // SAFETY: test\n    let _ = r;\n}\n";
    let f = lint_at("crates/net/src/shm.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::NoDirectLibc]);
}

#[test]
fn net_files_unsafe_needs_safety_comment() {
    let src = "pub fn view(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
    let f = lint_at("crates/net/src/topo.rs", src);
    assert_eq!(rules_of(&f), vec![Rule::UnsafeSafetyComment]);
}

#[test]
fn real_net_sources_are_in_the_scan_set() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/check has a workspace root two levels up");
    let net = root.join("crates/net/src");
    let expect = ["lib.rs", "frame.rs", "shm.rs", "sock.rs", "topo.rs"];
    for f in expect {
        assert!(net.join(f).is_file(), "crates/net/src/{f} moved — update this pin");
    }
    // lint_workspace scans every non-vendored .rs under the root; the
    // real workspace-clean assertion below is only meaningful for
    // flows-net if its files actually participate in that count.
    let (_, scanned) = flows_check::lint_workspace(&net).expect("scan crates/net");
    assert!(
        scanned >= expect.len(),
        "only {scanned} files under crates/net/src — transport sources left the scan set"
    );
}

// ---- the real workspace must be clean (acceptance criterion) ----

#[test]
fn real_workspace_is_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/check has a workspace root two levels up")
        .to_path_buf();
    let (findings, scanned) = flows_check::lint_workspace(&root).expect("scan");
    assert!(scanned > 50, "workspace scan found only {scanned} files");
    let rendered: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
    assert!(
        findings.is_empty(),
        "flowslint must pass clean on the workspace:\n{}",
        rendered.join("\n")
    );
}
