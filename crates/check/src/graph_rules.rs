//! The interprocedural rules: migration-image closure, atomic-protocol
//! pairing, and wire-message exhaustiveness. All three work on the
//! workspace-wide symbol graph built by [`crate::parse`], because the
//! thing they check — a type reachable from a migration root, a
//! publish/consume pair, a protocol and its dispatcher — routinely
//! spans files and crates.

use crate::lexer::find_token;
use crate::parse::{FileSymbols, ItemAnno};
use crate::tokens::Tok;
use crate::{Finding, Rule, SourceFile};
use std::collections::{BTreeMap, HashMap, HashSet};

// ---------------------------------------------------------------------
// Rule: migration-image-closure
// ---------------------------------------------------------------------

/// Types that always root the reachability walk, in addition to
/// anything annotated as a root: the thread control block and the AMPI
/// rank containers, the two images that actually cross process
/// boundaries (paper §3.4).
const FIXED_ROOTS: [&str; 3] = ["Tcb", "RankMove", "RankBox"];

/// Why a type name is process-local, or `None` if it is fine.
fn process_local(name: &str) -> Option<&'static str> {
    Some(match name {
        "HashMap" | "HashSet" | "RandomState" => {
            "hash-randomized container — iteration order is seeded per process, \
             so replay diverges after restore (the PR 6 replay wedge)"
        }
        "Mutex" | "RwLock" | "Condvar" | "Parker" | "Barrier" | "Once" | "OnceLock"
        | "OnceCell" | "LazyLock" => "OS-thread synchronization state is meaningless once \
             the image lands in another process",
        "Sender" | "Receiver" | "SyncSender" => {
            "channel endpoint — the peer queue lives on this process's heap"
        }
        "RawFd" | "OwnedFd" | "BorrowedFd" | "File" | "TcpStream" | "TcpListener"
        | "UdpSocket" | "UnixStream" | "UnixListener" | "UnixDatagram" => {
            "file descriptor — indexes a per-process descriptor table"
        }
        "MemFd" | "Mapping" => "memory mapping / memfd — a per-process resource",
        "JoinHandle" | "Thread" => "OS thread handle",
        "Instant" => "monotonic clock reading — the origin is per-process",
        "AtomicPtr" | "NonNull" => "raw address in disguise",
        _ => return None,
    })
}

/// Walk type reachability from every migration root and flag
/// process-local state that is reachable without a waiver.
pub(crate) fn rule_image_closure(
    files: &[SourceFile],
    syms: &[FileSymbols],
    out: &mut Vec<Finding>,
) {
    // Name → every definition site (same-crate candidates preferred at
    // resolution time, so an `ampi::Head` does not drag in a `net::Head`).
    let mut index: HashMap<&str, Vec<(usize, usize)>> = HashMap::new();
    for (fi, s) in syms.iter().enumerate() {
        for (ti, t) in s.types.iter().enumerate() {
            index.entry(&t.name).or_default().push((fi, ti));
        }
    }

    // Seed: fixed roots plus annotated ones. The walk carries the root
    // name and the field path for the report.
    let mut queue: Vec<(usize, usize, String, String)> = Vec::new();
    for (fi, s) in syms.iter().enumerate() {
        for (ti, t) in s.types.iter().enumerate() {
            let fixed = FIXED_ROOTS.contains(&t.name.as_str());
            if fixed || t.annos.contains(&ItemAnno::ImageRoot) {
                queue.push((fi, ti, t.name.clone(), t.name.clone()));
            }
        }
    }

    let mut visited: HashSet<(usize, usize)> = HashSet::new();
    while let Some((fi, ti, path, root)) = queue.pop() {
        if !visited.insert((fi, ti)) {
            continue;
        }
        let t = &syms[fi].types[ti];
        if t.annos.contains(&ItemAnno::ImageOpaque) {
            continue; // hand-written serializer owns this subtree
        }
        let f = &files[fi];
        for field in &t.fields {
            // A waived field is neither reported nor descended into: the
            // waiver asserts the pack path handles it explicitly.
            if f.waived(Rule::MigrationImageClosure, field.line) {
                continue;
            }
            let fpath = trim_path(&format!("{path}.{}", field.name));
            if field.raw_ptr {
                f.report(
                    Rule::MigrationImageClosure,
                    field.line,
                    format!(
                        "raw pointer reachable from migration root `{root}` at `{fpath}` \
                         ({}): addresses do not survive repacking in another process — \
                         store an offset/index, or waive with the invariant that rebinds it",
                        field.ty_text
                    ),
                    out,
                );
            }
            let mut seen_here: HashSet<&str> = HashSet::new();
            for r in &field.refs {
                if !seen_here.insert(r) {
                    continue;
                }
                if let Some(cands) = index.get(r.as_str()) {
                    let same: Vec<(usize, usize)> = cands
                        .iter()
                        .copied()
                        .filter(|(cfi, _)| files[*cfi].crate_key == f.crate_key)
                        .collect();
                    let chosen = if same.is_empty() { cands.clone() } else { same };
                    for (cfi, cti) in chosen {
                        queue.push((cfi, cti, fpath.clone(), root.clone()));
                    }
                } else if let Some(why) = process_local(r) {
                    f.report(
                        Rule::MigrationImageClosure,
                        field.line,
                        format!(
                            "process-local `{r}` reachable from migration root `{root}` \
                             at `{fpath}`: {why}; capture this state in the wire format \
                             explicitly or waive with a justification"
                        ),
                        out,
                    );
                }
            }
        }
    }
}

/// Keep reported paths readable: elide the middle of very deep chains.
fn trim_path(path: &str) -> String {
    let hops: Vec<&str> = path.split('.').collect();
    if hops.len() <= 8 {
        return path.to_string();
    }
    format!(
        "{}…{}",
        hops[..3].join("."),
        hops[hops.len() - 3..].join(".")
    )
}

// ---------------------------------------------------------------------
// Rule: atomic-protocol
// ---------------------------------------------------------------------

/// One annotated atomic site.
struct AtomicSite {
    file_idx: usize,
    /// The annotated code line (where waivers apply and findings land).
    line: usize,
    publishes: bool,
    tag: String,
}

/// Atomic operations that write (can publish) and read (can consume).
/// RMW ops appear in both.
const WRITE_OPS: [&str; 12] = [
    "store", "swap", "compare_exchange", "compare_exchange_weak", "fetch_add", "fetch_sub",
    "fetch_or", "fetch_and", "fetch_xor", "fetch_nand", "fetch_max", "fetch_update",
];
const READ_OPS: [&str; 12] = [
    "load", "swap", "compare_exchange", "compare_exchange_weak", "fetch_add", "fetch_sub",
    "fetch_or", "fetch_and", "fetch_xor", "fetch_nand", "fetch_max", "fetch_update",
];

/// Gather the statement starting at `line`: concatenated code lines
/// until the delimiters balance and a `;` has appeared (capped — an
/// annotation should sit on the operation, not a page above it).
fn statement_text(f: &SourceFile, line: usize) -> String {
    let mut stmt = String::new();
    let mut depth = 0i32;
    let end = (line + 8).min(f.stripped.code.len());
    for l in line..end {
        let code = &f.stripped.code[l];
        stmt.push_str(code);
        stmt.push(' ');
        for ch in code.chars() {
            match ch {
                '(' | '[' | '{' => depth += 1,
                ')' | ']' | '}' => depth -= 1,
                _ => {}
            }
        }
        if depth <= 0 && code.contains(';') {
            break;
        }
    }
    stmt
}

fn has_any_token(text: &str, words: &[&str]) -> bool {
    words.iter().any(|w| !find_token(text, w).is_empty())
}

/// Parse `flows-atomic:` directives and check each site's operation and
/// ordering; then check tag pairing across the whole file set.
pub(crate) fn rule_atomic_protocol(files: &[SourceFile], out: &mut Vec<Finding>) {
    let mut sites: Vec<AtomicSite> = Vec::new();
    for (fi, f) in files.iter().enumerate() {
        for (i, comment) in f.stripped.comments.iter().enumerate() {
            let text = comment.trim();
            let Some(rest) = text.strip_prefix("flows-atomic:") else {
                continue;
            };
            let mut words = rest.split_whitespace();
            let verb = words.next().unwrap_or("");
            let tag: String = words
                .next()
                .unwrap_or("")
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
                .collect();
            let publishes = match verb {
                "publishes" => true,
                "consumes" => false,
                _ => {
                    out.push(f.meta_finding(
                        i,
                        format!(
                            "unknown flows-atomic directive `{verb}` (expected \
                             `publishes <tag>` or `consumes <tag>`)"
                        ),
                    ));
                    continue;
                }
            };
            if tag.is_empty() {
                out.push(f.meta_finding(i, format!("flows-atomic `{verb}` names no tag")));
                continue;
            }
            // Same-line annotation covers its line; a pure-comment line
            // covers the next code line (waiver convention).
            let mut target = i;
            if f.stripped.code[i].trim().is_empty() {
                match (i + 1..f.stripped.code.len()).find(|&j| !f.stripped.code[j].trim().is_empty())
                {
                    Some(j) => target = j,
                    None => {
                        out.push(f.meta_finding(i, "flows-atomic annotation covers no code".into()));
                        continue;
                    }
                }
            }
            sites.push(AtomicSite { file_idx: fi, line: target, publishes, tag: tag.clone() });

            let stmt = statement_text(f, target);
            let (ops, side): (&[&str], _) = if publishes {
                (&WRITE_OPS, "publish")
            } else {
                (&READ_OPS, "consume")
            };
            if !has_any_token(&stmt, ops) {
                f.report(
                    Rule::AtomicProtocol,
                    target,
                    format!(
                        "flows-atomic `{side}s {tag}` covers no atomic {side} operation \
                         (move the annotation onto the store/load it describes)"
                    ),
                    out,
                );
                continue;
            }
            let strong = if publishes {
                has_any_token(&stmt, &["Release", "AcqRel", "SeqCst"])
            } else {
                has_any_token(&stmt, &["Acquire", "AcqRel", "SeqCst"])
            };
            if !strong {
                let (need, lost) = if publishes {
                    ("Release", "the consumer's Acquire load cannot synchronize with it, \
                      so data written before the flag may not be visible")
                } else {
                    ("Acquire", "reads after it may be satisfied before the publisher's \
                      writes become visible")
                };
                f.report(
                    Rule::AtomicProtocol,
                    target,
                    format!(
                        "{side} of tag `{tag}` uses no {need}-class ordering — {lost}; \
                         strengthen the ordering or waive with the invariant that makes \
                         Relaxed sufficient"
                    ),
                    out,
                );
            }
        }
    }

    // Pairing over every annotated site, waived or not: a waiver blesses
    // one site's ordering, it does not delete the site from the protocol.
    let mut tags: BTreeMap<&str, (Vec<&AtomicSite>, Vec<&AtomicSite>)> = BTreeMap::new();
    for s in &sites {
        let entry = tags.entry(&s.tag).or_default();
        if s.publishes {
            entry.0.push(s);
        } else {
            entry.1.push(s);
        }
    }
    for (tag, (pubs, cons)) in tags {
        if cons.is_empty() {
            let s = pubs[0];
            files[s.file_idx].report(
                Rule::AtomicProtocol,
                s.line,
                format!(
                    "tag `{tag}` is published but no site consumes it — either the \
                     consumer is missing its `flows-atomic` annotation or the protocol \
                     has no reader"
                ),
                out,
            );
        } else if pubs.is_empty() {
            let s = cons[0];
            files[s.file_idx].report(
                Rule::AtomicProtocol,
                s.line,
                format!(
                    "unpaired acquire: tag `{tag}` is consumed but no site publishes it \
                     — either the publisher is missing its `flows-atomic` annotation or \
                     this read is not part of a protocol"
                ),
                out,
            );
        }
    }
}

// ---------------------------------------------------------------------
// Rule: wire-exhaustive
// ---------------------------------------------------------------------

#[derive(Default)]
struct Proto {
    /// `(message name, file_idx, line)` — consts of the defining mod or
    /// variants of the defining enum.
    messages: Vec<(String, usize, usize)>,
    /// `(file_idx, line)` of each `defines` site.
    def_sites: Vec<(usize, usize)>,
    /// `(file_idx, first line, last line)` of each handler fn.
    handlers: Vec<(usize, usize, usize)>,
}

/// Is the identifier at `idx` used in a dispatch position: a match arm
/// pattern (`=> `, `| `) or an equality comparison?
fn is_match_site(toks: &[Tok], idx: usize) -> bool {
    if let Some(next) = toks.get(idx + 1) {
        if next.is_punct("=>") || next.is_punct("|") || next.is_punct("==") || next.is_punct("!=")
        {
            return true;
        }
    }
    // Walk back over the `path::` prefix, then look for a comparison or
    // an alternative separator before the whole path.
    let mut j = idx;
    while j >= 2 && toks[j - 1].is_punct("::") && toks[j - 2].ident().is_some() {
        j -= 2;
    }
    j.checked_sub(1)
        .and_then(|p| toks.get(p))
        .is_some_and(|prev| prev.is_punct("==") || prev.is_punct("!=") || prev.is_punct("|"))
}

/// Every message of every `defines` protocol must be matched inside
/// some `handles` fn; a protocol with no handler at all is itself a
/// finding.
pub(crate) fn rule_wire_exhaustive(
    files: &[SourceFile],
    syms: &[FileSymbols],
    out: &mut Vec<Finding>,
) {
    let mut protos: BTreeMap<String, Proto> = BTreeMap::new();
    for (fi, s) in syms.iter().enumerate() {
        for m in &s.mods {
            for a in &m.annos {
                if let ItemAnno::WireDefines(p) = a {
                    let proto = protos.entry(p.clone()).or_default();
                    proto.def_sites.push((fi, m.line));
                    for (cname, cline) in &s.consts {
                        if *cline >= m.line && *cline <= m.end_line {
                            proto.messages.push((cname.clone(), fi, *cline));
                        }
                    }
                }
            }
        }
        for t in &s.types {
            if !t.is_enum {
                continue;
            }
            for a in &t.annos {
                if let ItemAnno::WireDefines(p) = a {
                    let proto = protos.entry(p.clone()).or_default();
                    proto.def_sites.push((fi, t.line));
                    for (vname, vline) in &t.variants {
                        proto.messages.push((vname.clone(), fi, *vline));
                    }
                }
            }
        }
        for func in &s.fns {
            for a in &func.annos {
                if let ItemAnno::WireHandles(p) = a {
                    protos
                        .entry(p.clone())
                        .or_default()
                        .handlers
                        .push((fi, func.line, func.end_line));
                }
            }
        }
    }

    for (name, proto) in &protos {
        if proto.def_sites.is_empty() {
            for &(fi, line, _) in &proto.handlers {
                files[fi].report(
                    Rule::WireExhaustive,
                    line,
                    format!("handler for unknown protocol `{name}` — no mod or enum \
                             carries the matching `defines` annotation"),
                    out,
                );
            }
            continue;
        }
        if proto.handlers.is_empty() {
            let (fi, line) = proto.def_sites[0];
            files[fi].report(
                Rule::WireExhaustive,
                line,
                format!(
                    "protocol `{name}` defines {} message(s) but no fn is annotated as \
                     its handler — messages would be silently dropped",
                    proto.messages.len()
                ),
                out,
            );
            continue;
        }
        let names: HashSet<&str> = proto.messages.iter().map(|(n, _, _)| n.as_str()).collect();
        let mut matched: HashSet<&str> = HashSet::new();
        for &(fi, start, end) in &proto.handlers {
            let toks = &syms[fi].toks;
            for (idx, tok) in toks.iter().enumerate() {
                if tok.line < start || tok.line > end {
                    continue;
                }
                if let Some(word) = tok.ident() {
                    if names.contains(word) && is_match_site(toks, idx) {
                        matched.insert(word);
                    }
                }
            }
        }
        for (msg, fi, line) in &proto.messages {
            if !matched.contains(msg.as_str()) {
                files[*fi].report(
                    Rule::WireExhaustive,
                    *line,
                    format!(
                        "wire message `{msg}` of protocol `{name}` is matched in no \
                         handler — it would be silently dropped on receive; handle it \
                         or waive here"
                    ),
                    out,
                );
            }
        }
    }
}
