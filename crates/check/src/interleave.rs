//! A hand-rolled, loom-style schedule explorer.
//!
//! Models a concurrency protocol as N threads of named steps over a
//! `Clone`-able shared state, then runs **every** interleaving by DFS,
//! checking an invariant after each step. Blocking is modeled with an
//! `enabled` guard per step: a step whose guard is false is simply not
//! schedulable, and a state where unfinished threads exist but no step
//! is enabled is reported as a deadlock.
//!
//! This explores *interleavings* under sequential consistency. Weak
//! memory is modeled explicitly at the program level: a `Relaxed`
//! publish is written as the legally-reordered step sequence
//! (flag-write before data-write), so the explorer finds the stale read
//! a real `Acquire/Release` pair would prevent — exactly the failure
//! the `atomic-protocol` lint flags statically.

/// One atomic step of one modeled thread.
pub struct Step<S> {
    /// Shown in the violating schedule.
    pub name: &'static str,
    /// Schedulable only when this holds (models blocking/spinning).
    pub enabled: fn(&S) -> bool,
    /// The state transition.
    pub run: fn(&mut S),
}

impl<S> Step<S> {
    /// An always-enabled step.
    pub fn new(name: &'static str, run: fn(&mut S)) -> Step<S> {
        Step { name, enabled: |_| true, run }
    }

    /// A step gated on `enabled`.
    pub fn guarded(name: &'static str, enabled: fn(&S) -> bool, run: fn(&mut S)) -> Step<S> {
        Step { name, enabled, run }
    }
}

/// A violating execution: the step names scheduled so far, and why.
#[derive(Debug)]
pub struct Violation {
    /// Step names in schedule order, prefixed `t<i>:`.
    pub schedule: Vec<String>,
    /// Invariant message, or `"deadlock"`.
    pub msg: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} after [{}]", self.msg, self.schedule.join(" "))
    }
}

/// Exhaustive explorer over all interleavings of `threads`.
pub struct Explorer<S> {
    threads: Vec<Vec<Step<S>>>,
    /// Abort exploration past this many completed schedules (backstop
    /// against accidentally exponential models; generous by default).
    pub max_schedules: usize,
}

impl<S: Clone> Explorer<S> {
    /// Build an explorer over per-thread step lists.
    pub fn new(threads: Vec<Vec<Step<S>>>) -> Explorer<S> {
        Explorer { threads, max_schedules: 1_000_000 }
    }

    /// Run every interleaving from `init`, checking `invariant` after
    /// each step. Returns the number of complete schedules explored, or
    /// the first violation (invariant failure or deadlock).
    pub fn check(&self, init: &S, invariant: fn(&S) -> Result<(), String>) -> Result<usize, Violation> {
        let mut pcs = vec![0usize; self.threads.len()];
        let mut schedule: Vec<String> = Vec::new();
        let mut done = 0usize;
        self.dfs(init, &mut pcs, &mut schedule, invariant, &mut done)?;
        Ok(done)
    }

    fn dfs(
        &self,
        state: &S,
        pcs: &mut Vec<usize>,
        schedule: &mut Vec<String>,
        invariant: fn(&S) -> Result<(), String>,
        done: &mut usize,
    ) -> Result<(), Violation> {
        let mut any_pending = false;
        let mut any_ran = false;
        for t in 0..self.threads.len() {
            let Some(step) = self.threads[t].get(pcs[t]) else {
                continue;
            };
            any_pending = true;
            if !(step.enabled)(state) {
                continue;
            }
            any_ran = true;
            let mut next = state.clone();
            (step.run)(&mut next);
            schedule.push(format!("t{t}:{}", step.name));
            if let Err(msg) = invariant(&next) {
                return Err(Violation { schedule: schedule.clone(), msg });
            }
            pcs[t] += 1;
            self.dfs(&next, pcs, schedule, invariant, done)?;
            pcs[t] -= 1;
            schedule.pop();
        }
        if !any_pending {
            *done += 1;
            if *done > self.max_schedules {
                return Err(Violation {
                    schedule: schedule.clone(),
                    msg: format!("model exceeds {} schedules", self.max_schedules),
                });
            }
        } else if !any_ran {
            return Err(Violation { schedule: schedule.clone(), msg: "deadlock".into() });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct Flag {
        data: u64,
        full: bool,
        read: Option<u64>,
    }

    #[test]
    fn release_publish_passes_all_schedules() {
        // Data is written before the flag; the guarded consumer can
        // therefore never observe full && data == 0.
        let ex = Explorer::new(vec![
            vec![
                Step::new("write-data", |s: &mut Flag| s.data = 7),
                Step::new("set-full", |s| s.full = true),
            ],
            vec![Step::guarded("consume", |s| s.full, |s| s.read = Some(s.data))],
        ]);
        let n = ex
            .check(&Flag::default(), |s| match s.read {
                Some(0) => Err("consumed stale data".into()),
                _ => Ok(()),
            })
            .expect("no violation");
        assert!(n >= 1);
    }

    #[test]
    fn reordered_publish_is_caught() {
        // The Relaxed publish: stores may legally reorder, so the model
        // sets the flag before the data. The explorer must find the
        // schedule where the consumer runs in between.
        let ex = Explorer::new(vec![
            vec![
                Step::new("set-full", |s: &mut Flag| s.full = true),
                Step::new("write-data", |s| s.data = 7),
            ],
            vec![Step::guarded("consume", |s| s.full, |s| s.read = Some(s.data))],
        ]);
        let v = ex
            .check(&Flag::default(), |s| match s.read {
                Some(0) => Err("consumed stale data".into()),
                _ => Ok(()),
            })
            .expect_err("stale read must be found");
        assert!(v.schedule.iter().any(|s| s.contains("consume")), "{v}");
    }

    #[test]
    fn deadlock_is_a_violation() {
        let ex = Explorer::new(vec![vec![Step::guarded(
            "wait-forever",
            |s: &Flag| s.full,
            |_| {},
        )]]);
        let v = ex.check(&Flag::default(), |_| Ok(())).expect_err("deadlock");
        assert_eq!(v.msg, "deadlock");
    }

    #[test]
    fn schedule_count_is_exhaustive() {
        // Two independent 2-step threads: C(4,2) = 6 interleavings.
        let ex = Explorer::new(vec![
            vec![Step::new("a1", |_: &mut Flag| {}), Step::new("a2", |_| {})],
            vec![Step::new("b1", |_| {}), Step::new("b2", |_| {})],
        ]);
        assert_eq!(ex.check(&Flag::default(), |_| Ok(())).unwrap(), 6);
    }
}
