//! A minimal Rust lexer: just enough to separate *code* from *comments*
//! and to blank out string/char literal contents, so the rule engine can
//! do word-level matching on code without being fooled by `"unsafe"` in
//! a string or `libc::` in a doc comment.
//!
//! Handled: line comments (`//`, `///`, `//!`), nested block comments,
//! string literals with escapes, raw strings with any number of `#`s
//! (plus `b`/`c` prefixes), char/byte literals, and the char-literal vs
//! lifetime ambiguity (`'a'` vs `'a`).

/// One file, split into per-line code text and per-line comment text.
///
/// Both vectors have exactly one entry per source line. `code[i]` is line
/// `i` with comments removed and string/char literal *contents* replaced
/// by spaces (the quotes survive as placeholders, so column positions are
/// preserved). `comments[i]` is the concatenated comment text that
/// appears on line `i`, doc comments included.
#[derive(Debug, Default)]
pub struct Stripped {
    /// Per-line code with comments and literal contents blanked.
    pub code: Vec<String>,
    /// Per-line comment text (line, block and doc comments).
    pub comments: Vec<String>,
}

#[derive(PartialEq)]
enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(u32),
    CharLit,
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// If `chars[i..]` opens a raw string (`r"`, `r#"`, `br"`, `cr##"`, ...),
/// return `(hashes, opener_len)`.
fn raw_string_open(chars: &[char], i: usize) -> Option<(u32, usize)> {
    let mut j = i;
    if j < chars.len() && (chars[j] == 'b' || chars[j] == 'c') {
        j += 1;
    }
    if j >= chars.len() || chars[j] != 'r' {
        return None;
    }
    j += 1;
    let mut hashes = 0u32;
    while j < chars.len() && chars[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j < chars.len() && chars[j] == '"' {
        Some((hashes, j + 1 - i))
    } else {
        None
    }
}

/// Is the `'` at `chars[i]` a char literal (as opposed to a lifetime or
/// loop label)? `'x'` closes right after one scalar; escapes (`'\n'`)
/// always mean a literal; `'static` has no closing quote at `i + 2`.
fn is_char_literal(chars: &[char], i: usize) -> bool {
    match chars.get(i + 1) {
        Some('\\') => true,
        Some(_) => chars.get(i + 2) == Some(&'\''),
        None => false,
    }
}

/// Strip `src` into per-line code and comment text. Never fails: on
/// malformed input (unterminated literal) the rest of the file is treated
/// as literal content, which is the conservative choice for linting.
pub fn strip(src: &str) -> Stripped {
    let chars: Vec<char> = src.chars().collect();
    let mut out = Stripped::default();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let mut state = State::Code;
    let mut i = 0;

    macro_rules! newline {
        () => {{
            out.code.push(std::mem::take(&mut code_line));
            out.comments.push(std::mem::take(&mut comment_line));
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            newline!();
            if state == State::LineComment {
                state = State::Code;
            }
            i += 1;
            continue;
        }
        match state {
            State::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    state = State::LineComment;
                    i += 2;
                    // Skip doc-comment markers so the text starts clean.
                    while i < chars.len() && (chars[i] == '/' || chars[i] == '!') {
                        i += 1;
                    }
                    continue;
                }
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(1);
                    i += 2;
                    continue;
                }
                // Raw strings: only when not glued to an identifier
                // (`for"x"` is not valid Rust; `r` in `var` must not
                // trigger).
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                if !prev_ident {
                    if let Some((hashes, skip)) = raw_string_open(&chars, i) {
                        for _ in 0..skip {
                            code_line.push(' ');
                        }
                        i += skip;
                        state = State::RawStr(hashes);
                        continue;
                    }
                }
                if c == '"' {
                    code_line.push('"');
                    state = State::Str;
                    i += 1;
                    continue;
                }
                // Byte-char literals (`b'x'`, `b'"'`) put an identifier
                // char right before the quote — allow exactly a lone
                // `b` prefix, or `"` inside one would open phantom
                // string state and flip code/comment sense downstream.
                let byte_prefix =
                    i > 0 && chars[i - 1] == 'b' && (i < 2 || !is_ident(chars[i - 2]));
                if c == '\'' && (!prev_ident || byte_prefix) && is_char_literal(&chars, i) {
                    code_line.push('\'');
                    state = State::CharLit;
                    i += 1;
                    continue;
                }
                code_line.push(c);
                i += 1;
            }
            State::LineComment => {
                comment_line.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    state = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment_line.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    code_line.push(' ');
                    if i + 1 < chars.len() && chars[i + 1] != '\n' {
                        code_line.push(' ');
                        i += 1;
                    }
                } else if c == '"' {
                    code_line.push('"');
                    state = State::Code;
                } else {
                    code_line.push(' ');
                }
                i += 1;
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut ok = true;
                    for k in 0..hashes as usize {
                        if chars.get(i + 1 + k) != Some(&'#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..=hashes as usize {
                            code_line.push(' ');
                        }
                        i += 1 + hashes as usize;
                        state = State::Code;
                        continue;
                    }
                }
                code_line.push(' ');
                i += 1;
            }
            State::CharLit => {
                if c == '\\' {
                    code_line.push(' ');
                    if i + 1 < chars.len() && chars[i + 1] != '\n' {
                        code_line.push(' ');
                        i += 1;
                    }
                } else if c == '\'' {
                    code_line.push('\'');
                    state = State::Code;
                } else {
                    code_line.push(' ');
                }
                i += 1;
            }
        }
    }
    newline!();
    out
}

/// Column positions where `word` occurs in `line` as a whole token
/// (neither neighbor is an identifier character).
pub fn find_token(line: &str, word: &str) -> Vec<usize> {
    let bytes = line.as_bytes();
    let mut found = Vec::new();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let at = start + pos;
        let before_ok = at == 0 || {
            let b = bytes[at - 1] as char;
            !is_ident(b)
        };
        let after = at + word.len();
        let after_ok = after >= bytes.len() || {
            let b = bytes[after] as char;
            !is_ident(b)
        };
        if before_ok && after_ok {
            found.push(at);
        }
        start = at + word.len().max(1);
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_separated() {
        let s = strip("let x = \"unsafe\"; // SAFETY: not really\nunsafe { f() }\n");
        assert_eq!(s.code.len(), 3);
        assert!(!s.code[0].contains("unsafe"), "string content blanked");
        assert!(s.comments[0].contains("SAFETY"));
        assert!(s.code[1].contains("unsafe"));
        assert!(s.comments[1].is_empty());
    }

    #[test]
    fn raw_strings_and_chars() {
        let s = strip("let a = r#\"libc::getpid // no\"#; let b = 'x'; let c: &'static str = \"\";\n");
        assert!(!s.code[0].contains("libc"));
        assert!(s.comments[0].is_empty(), "comment inside raw string ignored");
        assert!(s.code[0].contains("&'static str"), "lifetime kept as code");
    }

    #[test]
    fn byte_char_literal_with_quote_does_not_open_a_string() {
        // `b'"'` must lex as one char literal: if the inner `"` opened
        // string state, everything after it would flip code/comment
        // sense — real string contents would leak out as lintable text.
        let s = strip("if b.get(i) == Some(&b'\"') { f(); } // trailing\nlet s = \"// flows-atomic: publishes x\";\n");
        assert!(s.comments[0].contains("trailing"));
        assert!(
            s.comments[1].is_empty(),
            "directive inside a string literal must stay blanked: {:?}",
            s.comments[1]
        );
        assert!(!s.code[1].contains("flows-atomic"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip("/* outer /* inner */ still comment */ code()\n");
        assert!(s.code[0].contains("code()"));
        assert!(s.comments[0].contains("inner"));
        assert!(!s.code[0].contains("outer"));
    }

    #[test]
    fn token_boundaries() {
        assert_eq!(find_token("unsafe_fn unsafe x", "unsafe"), vec![10]);
        assert_eq!(find_token("libc::getpid()", "libc"), vec![0]);
        assert!(find_token("mylibc::x", "libc").is_empty());
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        let s = strip("let x = \"a\\\"unsafe\\\"b\"; unsafe {}\n");
        let code = &s.code[0];
        assert_eq!(find_token(code, "unsafe").len(), 1, "only the real one: {code}");
    }
}
