//! `flowslint` — run the flows-check rules over the workspace.
//!
//! ```text
//! flowslint [--root DIR] [--list-rules] [--quiet]
//!           [--format text|json|sarif] [--sarif-out FILE]
//!           [--baseline FILE] [--write-baseline FILE]
//! ```
//!
//! Exits 0 when clean (baseline-suppressed findings do not fail the
//! run), 1 on live findings, 2 on usage/IO errors. With no `--root` the
//! workspace is found by walking up from the current directory to the
//! first `Cargo.toml` containing `[workspace]`. `--sarif-out` writes
//! the SARIF artifact regardless of `--format`, so CI always has the
//! machine-readable report next to the human one.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

const USAGE: &str = "usage: flowslint [--root DIR] [--list-rules] [--quiet] \
[--format text|json|sarif] [--sarif-out FILE] [--baseline FILE] [--write-baseline FILE]";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut format = Format::Text;
    let mut sarif_out: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    macro_rules! value {
        ($flag:expr) => {
            match args.next() {
                Some(v) => v,
                None => {
                    eprintln!("flowslint: {} needs a value", $flag);
                    return ExitCode::from(2);
                }
            }
        };
    }
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = Some(PathBuf::from(value!("--root"))),
            "--quiet" | "-q" => quiet = true,
            "--format" => {
                format = match value!("--format").as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    "sarif" => Format::Sarif,
                    other => {
                        eprintln!("flowslint: unknown format `{other}`");
                        return ExitCode::from(2);
                    }
                }
            }
            "--sarif-out" => sarif_out = Some(PathBuf::from(value!("--sarif-out"))),
            "--baseline" => baseline_path = Some(PathBuf::from(value!("--baseline"))),
            "--write-baseline" => write_baseline = Some(PathBuf::from(value!("--write-baseline"))),
            "--list-rules" => {
                for r in flows_check::Rule::ALL {
                    println!("{:24} {}", r.id(), r.describe());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flowslint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("flowslint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let (findings, scanned) = match flows_check::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flowslint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = write_baseline {
        let text = flows_check::baseline::render(&findings);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("flowslint: writing baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "flowslint: wrote baseline with {} entry(ies) to {}",
            findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let (live, suppressed) = match &baseline_path {
        Some(path) => {
            let text = match std::fs::read_to_string(path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("flowslint: reading baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let (entries, errors) = flows_check::baseline::parse(&text);
            if !errors.is_empty() {
                for e in errors {
                    eprintln!("flowslint: {}: {e}", path.display());
                }
                return ExitCode::from(2);
            }
            flows_check::baseline::apply(findings, &entries)
        }
        None => (findings, Vec::new()),
    };

    if let Some(path) = &sarif_out {
        if let Err(e) = std::fs::write(path, flows_check::report::to_sarif(&live)) {
            eprintln!("flowslint: writing SARIF {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    match format {
        Format::Text => {
            for f in &live {
                println!("{f}");
            }
        }
        Format::Json => print!("{}", flows_check::report::to_json(&live, scanned)),
        Format::Sarif => print!("{}", flows_check::report::to_sarif(&live)),
    }
    if !quiet {
        eprintln!(
            "flowslint: {} finding(s) ({} baseline-suppressed) in {} files ({} rules)",
            live.len(),
            suppressed.len(),
            scanned,
            flows_check::Rule::ALL.len()
        );
    }
    if live.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
