//! `flowslint` — run the flows-check rules over the workspace.
//!
//! ```text
//! flowslint [--root DIR] [--list-rules] [--quiet]
//! ```
//!
//! Exits 0 when clean, 1 on findings, 2 on usage/IO errors. With no
//! `--root` the workspace is found by walking up from the current
//! directory to the first `Cargo.toml` containing `[workspace]`.

use std::path::PathBuf;
use std::process::ExitCode;

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(s) = std::fs::read_to_string(&manifest) {
            if s.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => {
                    eprintln!("flowslint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--list-rules" => {
                for r in flows_check::Rule::ALL {
                    println!("{}", r.id());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("usage: flowslint [--root DIR] [--list-rules] [--quiet]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("flowslint: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("flowslint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let (findings, scanned) = match flows_check::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("flowslint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        println!("{f}");
    }
    if !quiet {
        eprintln!(
            "flowslint: {} finding(s) in {} files ({} rules)",
            findings.len(),
            scanned,
            flows_check::Rule::ALL.len()
        );
    }
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
