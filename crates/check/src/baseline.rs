//! The committed-baseline waiver file.
//!
//! A baseline entry identifies one accepted finding by `(rule id, file,
//! content hash)` — the hash is FNV-1a over the *trimmed code text* of
//! the flagged line, so entries survive the line drifting up or down
//! the file and expire automatically when the flagged code actually
//! changes. The file format is line-oriented and diff-friendly:
//!
//! ```text
//! # comment
//! <rule-id>\t<file>\t<fnv64 hex>\t<optional note>
//! ```

use crate::Finding;

/// FNV-1a, 64-bit: tiny, stable, dependency-free.
pub fn fnv1a(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in text.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Rule id (`migration-image-closure`, ...).
    pub rule: String,
    /// Workspace-relative path.
    pub file: String,
    /// FNV-1a of the trimmed code line, lowercase hex.
    pub hash: String,
}

fn finding_key(f: &Finding) -> Entry {
    Entry {
        rule: f.rule.map(|r| r.id()).unwrap_or("flowslint-meta").to_string(),
        file: f.file.clone(),
        hash: format!("{:016x}", fnv1a(f.context.trim())),
    }
}

/// Parse baseline text; bad lines are returned as errors rather than
/// silently dropped (a corrupt baseline must not un-suppress findings
/// without saying why).
pub fn parse(text: &str) -> (Vec<Entry>, Vec<String>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut cols = line.split('\t');
        match (cols.next(), cols.next(), cols.next()) {
            (Some(rule), Some(file), Some(hash)) if !rule.is_empty() && !file.is_empty() => {
                entries.push(Entry {
                    rule: rule.to_string(),
                    file: file.to_string(),
                    hash: hash.to_string(),
                });
            }
            _ => errors.push(format!(
                "baseline line {}: expected `rule<TAB>file<TAB>hash[<TAB>note]`",
                i + 1
            )),
        }
    }
    (entries, errors)
}

/// Split findings into (still live, suppressed-by-baseline).
pub fn apply(findings: Vec<Finding>, entries: &[Entry]) -> (Vec<Finding>, Vec<Finding>) {
    let (mut live, mut suppressed) = (Vec::new(), Vec::new());
    for f in findings {
        let key = finding_key(&f);
        if entries.contains(&key) {
            suppressed.push(f);
        } else {
            live.push(f);
        }
    }
    (live, suppressed)
}

/// Render findings as a fresh baseline file.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# flowslint baseline: accepted findings, keyed by (rule, file, code-line hash).\n\
         # Regenerate with `flowslint --write-baseline <path>`; entries expire when the\n\
         # flagged line's code changes.\n",
    );
    for f in findings {
        let k = finding_key(f);
        out.push_str(&format!("{}\t{}\t{}\t{}\n", k.rule, k.file, k.hash, f.msg));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rule;

    fn finding(line: usize, context: &str) -> Finding {
        Finding {
            file: "crates/x/src/a.rs".into(),
            line,
            rule: Some(Rule::NoDirectLibc),
            msg: "m".into(),
            context: context.into(),
        }
    }

    #[test]
    fn round_trip_survives_line_drift() {
        let base = render(&[finding(10, "libc::getpid();")]);
        let (entries, errs) = parse(&base);
        assert!(errs.is_empty());
        // Same code on a different line: still suppressed.
        let (live, supp) = apply(vec![finding(99, "  libc::getpid();  ")], &entries);
        assert!(live.is_empty());
        assert_eq!(supp.len(), 1);
        // Changed code: entry expires.
        let (live, supp) = apply(vec![finding(10, "libc::kill(0, 9);")], &entries);
        assert_eq!(live.len(), 1);
        assert!(supp.is_empty());
    }

    #[test]
    fn bad_lines_are_reported() {
        let (entries, errs) = parse("# ok\nnot a valid line\n");
        assert!(entries.is_empty());
        assert_eq!(errs.len(), 1);
    }
}
