//! Token stream over [`lexer::Stripped`] code lines.
//!
//! The lexer already removed comments and blanked literal contents, so
//! tokenization here is simple: identifiers/keywords, multi-character
//! punctuation (`::`, `->`, `=>`, ...), single punctuation characters,
//! and opaque literal tokens. Every token remembers its (line, column)
//! so downstream rules can report precisely and waivers can match.
//!
//! [`lexer::Stripped`]: crate::lexer::Stripped

use crate::lexer::Stripped;

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`struct`, `Tcb`, `send_seq`, ...).
    Ident(String),
    /// Punctuation; multi-char operators are kept whole (`::`, `->`,
    /// `=>`, `==`, `!=`, `<=`, `>=`, `&&`, `||`, `..`).
    Punct(&'static str),
    /// A punctuation character outside the multi-char set.
    Char(char),
    /// A numeric literal (value not interpreted).
    Num,
    /// A string/char literal placeholder (contents already blanked).
    Lit,
    /// A lifetime (`'a`, `'static`).
    Life,
}

/// One token with its source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// 0-based line index into the [`Stripped`] vectors.
    pub line: usize,
    /// 0-based character column.
    pub col: usize,
    /// The token itself.
    pub kind: TokKind,
}

impl Tok {
    /// Is this token the identifier `word`?
    pub fn is_ident(&self, word: &str) -> bool {
        matches!(&self.kind, TokKind::Ident(s) if s == word)
    }

    /// Is this token the punctuation `p`?
    pub fn is_punct(&self, p: &str) -> bool {
        match &self.kind {
            TokKind::Punct(s) => *s == p,
            TokKind::Char(c) => p.len() == 1 && p.starts_with(*c),
            _ => false,
        }
    }

    /// The identifier text, if any.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s),
            _ => None,
        }
    }
}

/// Multi-character operators recognized as single tokens, longest first.
const MULTI: [&str; 10] = ["::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", ".."];

/// Tokenize the stripped code lines into one flat stream.
pub fn tokenize(stripped: &Stripped) -> Vec<Tok> {
    let mut out = Vec::new();
    for (line_idx, line) in stripped.code.iter().enumerate() {
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if c.is_alphabetic() || c == '_' {
                let start = i;
                while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                    i += 1;
                }
                out.push(Tok {
                    line: line_idx,
                    col: start,
                    kind: TokKind::Ident(chars[start..i].iter().collect()),
                });
                continue;
            }
            if c.is_ascii_digit() {
                // Numeric literal: digits plus suffix/float glue. The
                // value never matters to any rule.
                let start = i;
                while i < chars.len()
                    && (chars[i].is_alphanumeric() || chars[i] == '_' || chars[i] == '.')
                {
                    // `0..len` range: stop before `..`.
                    if chars[i] == '.' && chars.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.push(Tok { line: line_idx, col: start, kind: TokKind::Num });
                continue;
            }
            if c == '"' {
                // Blanked string literal: scan to the closing quote on
                // this line (the lexer guarantees no embedded quotes).
                let start = i;
                i += 1;
                while i < chars.len() && chars[i] != '"' {
                    i += 1;
                }
                i = (i + 1).min(chars.len());
                out.push(Tok { line: line_idx, col: start, kind: TokKind::Lit });
                continue;
            }
            if c == '\'' {
                let start = i;
                // Lifetime (`'a`) vs blanked char literal (`' '`).
                if chars.get(i + 1).is_some_and(|n| n.is_alphabetic() || *n == '_') {
                    i += 1;
                    while i < chars.len() && (chars[i].is_alphanumeric() || chars[i] == '_') {
                        i += 1;
                    }
                    out.push(Tok { line: line_idx, col: start, kind: TokKind::Life });
                } else {
                    i += 1;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i = (i + 1).min(chars.len());
                    out.push(Tok { line: line_idx, col: start, kind: TokKind::Lit });
                }
                continue;
            }
            if let Some(op) = MULTI
                .iter()
                .find(|op| line[char_byte(line, i)..].starts_with(**op))
            {
                out.push(Tok { line: line_idx, col: i, kind: TokKind::Punct(op) });
                i += op.chars().count();
                continue;
            }
            out.push(Tok { line: line_idx, col: i, kind: TokKind::Char(c) });
            i += 1;
        }
    }
    out
}

/// Byte offset of character index `i` in `line` (lines are short; the
/// scan is cheap and only hit on punctuation).
fn char_byte(line: &str, i: usize) -> usize {
    line.char_indices().nth(i).map(|(b, _)| b).unwrap_or(line.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn toks(src: &str) -> Vec<Tok> {
        tokenize(&strip(src))
    }

    #[test]
    fn idents_and_multichar_punct() {
        let t = toks("impl Pup for Vec<T> { fn size(&self) -> usize; }\n");
        let idents: Vec<&str> = t.iter().filter_map(|t| t.ident()).collect();
        assert_eq!(idents, ["impl", "Pup", "for", "Vec", "T", "fn", "size", "self", "usize"]);
        assert!(t.iter().any(|t| t.is_punct("->")));
    }

    #[test]
    fn paths_and_literals() {
        let t = toks("let x = ctrl::STATS; let s = \"quoted ident\"; let c = 'x';\n");
        assert!(t.iter().any(|t| t.is_punct("::")));
        assert!(t.iter().any(|t| t.is_ident("STATS")));
        // Blanked literal contents never produce identifier tokens.
        assert!(!t.iter().any(|t| t.is_ident("quoted")));
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Lit).count(), 2);
    }

    #[test]
    fn lifetimes_and_ranges() {
        let t = toks("fn f<'a>(x: &'a str) { for i in 0..10 {} }\n");
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Life).count(), 2);
        assert!(t.iter().any(|t| t.is_punct("..")));
        assert_eq!(t.iter().filter(|t| t.kind == TokKind::Num).count(), 2);
    }

    #[test]
    fn positions_are_per_line() {
        let t = toks("a\nbb\n");
        assert_eq!(t[0].line, 0);
        assert_eq!(t[1].line, 1);
        assert_eq!(t[1].col, 0);
    }
}
