//! Machine-readable output: a compact JSON report and SARIF 2.1.0, both
//! hand-rolled (this crate is dependency-free by design). SARIF is the
//! interchange format CI viewers ingest; the JSON form is for quick
//! `jq`-style consumption in scripts.

use crate::{Finding, Rule};

/// Escape a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn rule_id(f: &Finding) -> &'static str {
    f.rule.map(|r| r.id()).unwrap_or("flowslint-meta")
}

/// The compact JSON report: tool header plus one object per finding.
pub fn to_json(findings: &[Finding], scanned: usize) -> String {
    let mut out = String::from("{\n  \"tool\": \"flowslint\",\n");
    out.push_str(&format!("  \"files_scanned\": {scanned},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"msg\": \"{}\"}}",
            json_escape(&f.file),
            f.line,
            rule_id(f),
            json_escape(&f.msg)
        ));
    }
    out.push_str(if findings.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
    out
}

/// SARIF 2.1.0 with the full rule table in the driver metadata and one
/// `result` per finding.
pub fn to_sarif(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"$schema\": \"https://json.schemastore.org/sarif-2.1.0.json\",\n");
    out.push_str("  \"version\": \"2.1.0\",\n");
    out.push_str("  \"runs\": [\n    {\n");
    out.push_str("      \"tool\": {\n        \"driver\": {\n");
    out.push_str("          \"name\": \"flowslint\",\n");
    out.push_str("          \"version\": \"2.0.0\",\n");
    out.push_str("          \"informationUri\": \"https://example.invalid/flowslint\",\n");
    out.push_str("          \"rules\": [");
    for (i, r) in Rule::ALL.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n            {{\"id\": \"{}\", \"shortDescription\": {{\"text\": \"{}\"}}}}",
            r.id(),
            json_escape(r.describe())
        ));
    }
    out.push_str("\n          ]\n        }\n      },\n");
    out.push_str("      \"results\": [");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n        {{\"ruleId\": \"{}\", \"level\": \"error\", \"message\": {{\"text\": \
             \"{}\"}}, \"locations\": [{{\"physicalLocation\": {{\"artifactLocation\": \
             {{\"uri\": \"{}\"}}, \"region\": {{\"startLine\": {}}}}}}}]}}",
            rule_id(f),
            json_escape(&f.msg),
            json_escape(&f.file),
            f.line
        ));
    }
    out.push_str(if findings.is_empty() {
        "]\n    }\n  ]\n}\n"
    } else {
        "\n      ]\n    }\n  ]\n}\n"
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            file: "crates/x/src/a.rs".into(),
            line: 3,
            rule: Some(Rule::NoDirectLibc),
            msg: "a \"quoted\" message\nwith a newline".into(),
            context: "libc::getpid()".into(),
        }]
    }

    #[test]
    fn json_escapes_and_structure() {
        let j = to_json(&sample(), 7);
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\\n"));
        assert!(j.contains("\"files_scanned\": 7"));
    }

    #[test]
    fn sarif_has_rules_and_results() {
        let s = to_sarif(&sample());
        assert!(s.contains("\"version\": \"2.1.0\""));
        assert!(s.contains("\"ruleId\": \"no-direct-libc\""));
        assert!(s.contains("\"startLine\": 3"));
        for r in Rule::ALL {
            assert!(s.contains(r.id()), "rule table lists {}", r.id());
        }
    }
}
