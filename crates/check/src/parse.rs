//! Item parser: token stream → per-file symbol graph.
//!
//! This is not a Rust grammar — it is a flat, keyword-triggered scanner
//! that recovers exactly the structure the interprocedural rules need:
//! type definitions with their fields and the identifiers referenced in
//! each field's type, `impl` headers, `fn` spans, inline `mod` spans
//! with their `const` members, and `use` edges. It parses *through*
//! bodies (items nested in functions and impls are still found) and
//! fails soft on anything it does not understand, which is the right
//! bias for a linter: an unparsed item produces no findings rather than
//! wrong ones.
//!
//! ## Annotation grammar
//!
//! Items pick up directives from their leading comment block (the same
//! contiguous comment/attribute climb the SAFETY rule uses). A directive
//! must be *anchored* — the comment's trimmed text starts with it — so
//! prose that merely mentions the grammar (like this paragraph) is
//! inert. The forms, documented here unanchored on purpose:
//!
//! - "flows-image" + `: root` — the type is a migration-image root; the
//!   closure rule starts its reachability walk here.
//! - "flows-image" + `: opaque <why>` — the type serializes itself (a
//!   hand-written `Pup` impl); the walk does not descend into its
//!   fields. The justification text is mandatory.
//! - "flows-wire" + `: defines <proto>` — on an inline `mod` (each
//!   `const` inside is one message tag) or an `enum` (each variant is
//!   one message).
//! - "flows-wire" + `: handles <proto>` — on the `fn` that dispatches
//!   that protocol; every message must be matched in some handler.
//!
//! (`flows-atomic` directives are line-scoped like waivers and are
//! parsed by the atomic-protocol rule, not here.)

use crate::lexer::Stripped;
use crate::tokens::{tokenize, Tok, TokKind};

/// An item-level annotation (see module docs for the grammar).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemAnno {
    /// The type roots the migration-image closure walk.
    ImageRoot,
    /// The type hand-serializes itself; do not descend into fields.
    ImageOpaque,
    /// This mod/enum defines wire protocol `<name>`'s message set.
    WireDefines(String),
    /// This fn dispatches wire protocol `<name>`.
    WireHandles(String),
}

/// One field (or enum-variant payload slot) of a type.
#[derive(Debug, Clone)]
pub struct FieldDef {
    /// `name`, `Variant.name`, `0`, or `Variant.0`.
    pub name: String,
    /// 0-based line of the field.
    pub line: usize,
    /// The type text, re-rendered from tokens (for messages).
    pub ty_text: String,
    /// Every identifier appearing in the type (path segments included;
    /// resolution decides which matter).
    pub refs: Vec<String>,
    /// The type contains `*mut` / `*const`.
    pub raw_ptr: bool,
}

/// A struct or enum definition.
#[derive(Debug, Clone)]
pub struct TypeDef {
    /// The type name.
    pub name: String,
    /// 0-based line of the `struct`/`enum` keyword.
    pub line: usize,
    /// Enum rather than struct.
    pub is_enum: bool,
    /// Fields (for enums: variant payload slots, `Variant.`-prefixed).
    pub fields: Vec<FieldDef>,
    /// Enum variant names with their lines (empty for structs).
    pub variants: Vec<(String, usize)>,
    /// Annotations from the leading comment block.
    pub annos: Vec<ItemAnno>,
}

/// A function definition (free or associated).
#[derive(Debug, Clone)]
pub struct FnDef {
    /// The function name.
    pub name: String,
    /// 0-based line of the `fn` keyword.
    pub line: usize,
    /// 0-based line of the body's closing brace (`line` if bodyless).
    pub end_line: usize,
    /// Signature text from name to body open, re-rendered from tokens.
    pub sig: String,
    /// Annotations from the leading comment block.
    pub annos: Vec<ItemAnno>,
}

/// An inline module (`mod name { ... }`).
#[derive(Debug, Clone)]
pub struct ModDef {
    /// The module name.
    pub name: String,
    /// 0-based line of the `mod` keyword.
    pub line: usize,
    /// 0-based line of the closing brace.
    pub end_line: usize,
    /// Annotations from the leading comment block.
    pub annos: Vec<ItemAnno>,
}

/// An `impl` header.
#[derive(Debug, Clone)]
pub struct ImplDef {
    /// Trait path's final segment, if a trait impl.
    pub trait_name: Option<String>,
    /// Self-type path's final segment, when it is a plain path.
    pub type_name: Option<String>,
    /// 0-based line of the `impl` keyword.
    pub line: usize,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Default)]
pub struct FileSymbols {
    /// The raw token stream (rules scan it for match-site detection).
    pub toks: Vec<Tok>,
    /// Struct/enum definitions.
    pub types: Vec<TypeDef>,
    /// Function definitions, free and associated.
    pub fns: Vec<FnDef>,
    /// Inline modules.
    pub mods: Vec<ModDef>,
    /// `const NAME` declarations as `(name, line)`.
    pub consts: Vec<(String, usize)>,
    /// Impl headers.
    pub impls: Vec<ImplDef>,
    /// `use` paths, re-rendered.
    pub uses: Vec<String>,
    /// Malformed annotation directives: `(line, message)`.
    pub anno_errors: Vec<(usize, String)>,
}

/// Parse one stripped file into its symbol table.
pub fn parse_file(stripped: &Stripped) -> FileSymbols {
    let toks = tokenize(stripped);
    let mut syms = FileSymbols::default();
    let mut i = 0;
    while i < toks.len() {
        let Some(word) = toks[i].ident() else {
            i += 1;
            continue;
        };
        i = match word {
            "struct" => parse_struct(&toks, i, stripped, &mut syms),
            "enum" => parse_enum(&toks, i, stripped, &mut syms),
            "impl" if !impl_in_type_position(&toks, i) => parse_impl(&toks, i, &mut syms),
            "fn" => parse_fn(&toks, i, stripped, &mut syms),
            "mod" => parse_mod(&toks, i, stripped, &mut syms),
            "const" => parse_const(&toks, i, &mut syms),
            "use" => parse_use(&toks, i, &mut syms),
            _ => i + 1,
        };
    }
    scan_anno_errors(stripped, &mut syms.anno_errors);
    syms.toks = toks;
    syms
}

/// `-> impl Trait`, `(impl Trait`, `: impl`, ... — `impl` used as a type,
/// not an item.
fn impl_in_type_position(t: &[Tok], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|p| t.get(p)) else {
        return false;
    };
    prev.is_punct("->")
        || prev.is_punct("(")
        || prev.is_punct(",")
        || prev.is_punct(":")
        || prev.is_punct("=")
        || prev.is_punct("&")
        || prev.is_punct("<")
        || prev.is_punct("+")
}

/// Index just past the delimiter group opened at `open` (`(`/`[`/`{`).
/// Returns `t.len()` on unbalanced input (fail soft).
fn skip_group(t: &[Tok], open: usize) -> usize {
    let (o, c) = match &t[open].kind {
        TokKind::Char('(') => ('(', ')'),
        TokKind::Char('[') => ('[', ']'),
        TokKind::Char('{') => ('{', '}'),
        _ => return open + 1,
    };
    let mut depth = 0i32;
    let mut i = open;
    while i < t.len() {
        if let TokKind::Char(ch) = t[i].kind {
            if ch == o {
                depth += 1;
            } else if ch == c {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
        }
        i += 1;
    }
    t.len()
}

/// Index just past a generics group `<...>` opened at `i`; `i` itself if
/// there is none.
fn skip_generics(t: &[Tok], i: usize) -> usize {
    if !t.get(i).is_some_and(|x| x.is_punct("<")) {
        return i;
    }
    let mut depth = 0i32;
    let mut j = i;
    while j < t.len() {
        if t[j].is_punct("<") {
            depth += 1;
        } else if t[j].is_punct(">") {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        } else if t[j].is_punct(";") || t[j].is_punct("{") {
            // Unbalanced (comparison operator, not generics): bail where
            // the item structure resumes.
            return j;
        }
        j += 1;
    }
    t.len()
}

/// Render tokens back to readable text (for messages only).
fn render(t: &[Tok]) -> String {
    let mut out = String::new();
    for tok in t {
        let s: String = match &tok.kind {
            TokKind::Ident(s) => s.clone(),
            TokKind::Punct(p) => (*p).to_string(),
            TokKind::Char(c) => c.to_string(),
            TokKind::Num => "0".into(),
            TokKind::Lit => "\"..\"".into(),
            TokKind::Life => "'_".into(),
        };
        if !out.is_empty()
            && !matches!(s.as_str(), "," | ";" | ">" | ")" | "]" | "::")
            && !out.ends_with("::")
            && !out.ends_with('(')
            && !out.ends_with('<')
            && !out.ends_with('&')
            && !out.ends_with('*')
        {
            out.push(' ');
        }
        out.push_str(&s);
    }
    out
}

/// Scan one field's type tokens in `t[start..limit]`: stops at a
/// top-level `,` (delimiter and angle depth zero). Returns
/// `(next index, refs, raw_ptr, ty_text)`.
fn scan_field_type(t: &[Tok], start: usize, limit: usize) -> (usize, Vec<String>, bool, String) {
    let mut refs = Vec::new();
    let mut raw = false;
    let mut depth = 0i32;
    let mut angle = 0i32;
    let mut m = start;
    while m < limit {
        match &t[m].kind {
            TokKind::Char('(') | TokKind::Char('[') | TokKind::Char('{') => depth += 1,
            TokKind::Char(')') | TokKind::Char(']') | TokKind::Char('}') => depth -= 1,
            TokKind::Char('<') => angle += 1,
            TokKind::Char('>') => angle = (angle - 1).max(0),
            TokKind::Char(',') if depth == 0 && angle == 0 => break,
            TokKind::Char('*')
                if t.get(m + 1).is_some_and(|n| n.is_ident("mut") || n.is_ident("const")) =>
            {
                raw = true;
            }
            TokKind::Ident(s) => refs.push(s.clone()),
            _ => {}
        }
        if depth < 0 {
            break;
        }
        m += 1;
    }
    let text = render(&t[start..m]);
    (m, refs, raw, text)
}

/// Parse the fields inside a `{ ... }` (named) or `( ... )` (tuple)
/// group at `open`, pushing into `fields` with an optional
/// `Variant.`-style prefix. Returns the index just past the group.
fn parse_fields(t: &[Tok], open: usize, prefix: &str, fields: &mut Vec<FieldDef>) -> usize {
    let named = t[open].is_punct("{");
    let close = skip_group(t, open) - 1;
    let mut k = open + 1;
    let mut tuple_idx = 0usize;
    while k < close {
        // Attributes and visibility are noise before a field.
        if t[k].is_punct("#") && t.get(k + 1).is_some_and(|n| n.is_punct("[")) {
            k = skip_group(t, k + 1);
            continue;
        }
        if t[k].is_ident("pub") {
            k += 1;
            if t.get(k).is_some_and(|n| n.is_punct("(")) {
                k = skip_group(t, k);
            }
            continue;
        }
        if named {
            let (Some(fname), true) = (
                t[k].ident().map(String::from),
                t.get(k + 1).is_some_and(|n| n.is_punct(":")),
            ) else {
                k += 1;
                continue;
            };
            let line = t[k].line;
            let (m, refs, raw, ty_text) = scan_field_type(t, k + 2, close);
            fields.push(FieldDef {
                name: format!("{prefix}{fname}"),
                line,
                ty_text,
                refs,
                raw_ptr: raw,
            });
            k = m + 1;
        } else {
            let line = t[k].line;
            let (m, refs, raw, ty_text) = scan_field_type(t, k, close);
            fields.push(FieldDef {
                name: format!("{prefix}{tuple_idx}"),
                line,
                ty_text,
                refs,
                raw_ptr: raw,
            });
            tuple_idx += 1;
            k = m + 1;
        }
    }
    close + 1
}

fn parse_struct(t: &[Tok], i: usize, stripped: &Stripped, out: &mut FileSymbols) -> usize {
    let decl_line = t[i].line;
    let Some(name) = t.get(i + 1).and_then(|x| x.ident().map(String::from)) else {
        return i + 1; // macro template (`struct $name`) — fail soft
    };
    let mut j = skip_generics(t, i + 2);
    // Tuple struct: the paren follows the name/generics immediately.
    if t.get(j).is_some_and(|x| x.is_punct("(")) {
        let mut fields = Vec::new();
        let end = parse_fields(t, j, "", &mut fields);
        out.types.push(TypeDef {
            name,
            line: decl_line,
            is_enum: false,
            fields,
            variants: Vec::new(),
            annos: collect_annos(stripped, decl_line),
        });
        return end;
    }
    // Skip a where-clause (whose bounds may contain parens/generics) to
    // the body brace or the unit-struct semicolon.
    while j < t.len() {
        if t[j].is_punct("{") {
            let mut fields = Vec::new();
            let end = parse_fields(t, j, "", &mut fields);
            out.types.push(TypeDef {
                name,
                line: decl_line,
                is_enum: false,
                fields,
                variants: Vec::new(),
                annos: collect_annos(stripped, decl_line),
            });
            return end;
        }
        if t[j].is_punct(";") {
            out.types.push(TypeDef {
                name,
                line: decl_line,
                is_enum: false,
                fields: Vec::new(),
                variants: Vec::new(),
                annos: collect_annos(stripped, decl_line),
            });
            return j + 1;
        }
        if t[j].is_punct("(") {
            j = skip_group(t, j);
        } else if t[j].is_punct("<") {
            j = skip_generics(t, j);
        } else {
            j += 1;
        }
    }
    t.len()
}

fn parse_enum(t: &[Tok], i: usize, stripped: &Stripped, out: &mut FileSymbols) -> usize {
    let decl_line = t[i].line;
    let Some(name) = t.get(i + 1).and_then(|x| x.ident().map(String::from)) else {
        return i + 1;
    };
    let mut j = skip_generics(t, i + 2);
    while j < t.len() && !t[j].is_punct("{") {
        if t[j].is_punct(";") {
            return j + 1;
        }
        j = if t[j].is_punct("(") { skip_group(t, j) } else { j + 1 };
    }
    if j >= t.len() {
        return t.len();
    }
    let close = skip_group(t, j) - 1;
    let mut fields = Vec::new();
    let mut variants = Vec::new();
    let mut k = j + 1;
    while k < close {
        if t[k].is_punct("#") && t.get(k + 1).is_some_and(|n| n.is_punct("[")) {
            k = skip_group(t, k + 1);
            continue;
        }
        let Some(vname) = t[k].ident().map(String::from) else {
            k += 1;
            continue;
        };
        variants.push((vname.clone(), t[k].line));
        k += 1;
        if k < close && (t[k].is_punct("(") || t[k].is_punct("{")) {
            k = parse_fields(t, k, &format!("{vname}."), &mut fields);
        }
        // Discriminant (`= expr`) and the trailing comma.
        while k < close && !t[k].is_punct(",") {
            k = if t[k].is_punct("(") { skip_group(t, k) } else { k + 1 };
        }
        k += 1;
    }
    out.types.push(TypeDef {
        name,
        line: decl_line,
        is_enum: true,
        fields,
        variants,
        annos: collect_annos(stripped, decl_line),
    });
    close + 1
}

fn parse_impl(t: &[Tok], i: usize, out: &mut FileSymbols) -> usize {
    let decl_line = t[i].line;
    let mut j = skip_generics(t, i + 1);
    // Header idents at angle/bracket depth zero, split at a top-level
    // `for` (HRTB `for<...>` is skipped, not a split).
    let mut before: Vec<String> = Vec::new();
    let mut after: Vec<String> = Vec::new();
    let mut saw_for = false;
    let mut angle = 0i32;
    while j < t.len() && !t[j].is_punct("{") && !t[j].is_punct(";") {
        if t[j].is_punct("<") {
            angle += 1;
        } else if t[j].is_punct(">") {
            angle = (angle - 1).max(0);
        } else if t[j].is_punct("(") || t[j].is_punct("[") {
            j = skip_group(t, j);
            continue;
        } else if let Some(w) = t[j].ident() {
            if w == "for" && angle == 0 {
                if t.get(j + 1).is_some_and(|n| n.is_punct("<")) {
                    j = skip_generics(t, j + 1);
                    continue;
                }
                saw_for = true;
                j += 1;
                continue;
            }
            if angle == 0 && w != "where" && w != "dyn" && w != "mut" {
                if saw_for {
                    after.push(w.to_string());
                } else {
                    before.push(w.to_string());
                }
            }
            if w == "where" {
                // Bounds follow; idents after this are not the type.
                angle += 1000;
            }
        }
        j += 1;
    }
    let (trait_name, type_name) = if saw_for {
        (before.last().cloned(), after.last().cloned())
    } else {
        (None, before.last().cloned())
    };
    out.impls.push(ImplDef { trait_name, type_name, line: decl_line });
    // Continue scanning inside the impl body: methods become FnDefs.
    if j < t.len() && t[j].is_punct("{") {
        j + 1
    } else {
        j
    }
}

fn parse_fn(t: &[Tok], i: usize, stripped: &Stripped, out: &mut FileSymbols) -> usize {
    let decl_line = t[i].line;
    let Some(name) = t.get(i + 1).and_then(|x| x.ident().map(String::from)) else {
        return i + 1; // `fn(...)` pointer type or macro template
    };
    let mut j = skip_generics(t, i + 2);
    if !t.get(j).is_some_and(|x| x.is_punct("(")) {
        return i + 1;
    }
    let args_end = skip_group(t, j);
    j = args_end;
    // Return type / where clause, up to the body or a bodyless `;`.
    while j < t.len() && !t[j].is_punct("{") && !t[j].is_punct(";") {
        j = match () {
            _ if t[j].is_punct("(") || t[j].is_punct("[") => skip_group(t, j),
            _ if t[j].is_punct("<") => skip_generics(t, j),
            _ => j + 1,
        };
    }
    let sig = render(&t[i + 1..j.min(t.len())]);
    let (end_line, resume) = if j < t.len() && t[j].is_punct("{") {
        let close = skip_group(t, j) - 1;
        let end = t.get(close).map(|x| x.line).unwrap_or(decl_line);
        // Resume just inside the body so nested items are still found.
        (end, j + 1)
    } else {
        (decl_line, j + 1)
    };
    out.fns.push(FnDef {
        name,
        line: decl_line,
        end_line,
        sig,
        annos: collect_annos(stripped, decl_line),
    });
    resume
}

fn parse_mod(t: &[Tok], i: usize, stripped: &Stripped, out: &mut FileSymbols) -> usize {
    let decl_line = t[i].line;
    let Some(name) = t.get(i + 1).and_then(|x| x.ident().map(String::from)) else {
        return i + 1;
    };
    match t.get(i + 2) {
        Some(x) if x.is_punct("{") => {
            let close = skip_group(t, i + 2) - 1;
            let end_line = t.get(close).map(|x| x.line).unwrap_or(decl_line);
            out.mods.push(ModDef {
                name,
                line: decl_line,
                end_line,
                annos: collect_annos(stripped, decl_line),
            });
            // Scan inside: member consts are wire messages.
            i + 3
        }
        _ => i + 2, // `mod name;` — out-of-line, nothing to span
    }
}

fn parse_const(t: &[Tok], i: usize, out: &mut FileSymbols) -> usize {
    // `const NAME : Ty = ...` — requires the colon so `*const`, `const
    // fn`, and `const {}` blocks never trigger.
    let (Some(name), true) = (
        t.get(i + 1).and_then(|x| x.ident().map(String::from)),
        t.get(i + 2).is_some_and(|x| x.is_punct(":")),
    ) else {
        return i + 1;
    };
    out.consts.push((name, t[i + 1].line));
    i + 3
}

fn parse_use(t: &[Tok], i: usize, out: &mut FileSymbols) -> usize {
    let mut j = i + 1;
    while j < t.len() && !t[j].is_punct(";") {
        j += 1;
    }
    out.uses.push(render(&t[i + 1..j]));
    j + 1
}

// ---------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------

/// Parse one anchored directive out of a comment's trimmed text.
/// `None`: not a directive. `Some(Err)`: malformed.
fn parse_directive(comment: &str) -> Option<Result<ItemAnno, String>> {
    let text = comment.trim();
    if let Some(rest) = text.strip_prefix("flows-image:") {
        let rest = rest.trim();
        if rest == "root" {
            return Some(Ok(ItemAnno::ImageRoot));
        }
        if let Some(reason) = rest.strip_prefix("opaque") {
            let reason = reason.trim_start_matches([' ', '\t', '-', ':', '—', '–']).trim();
            if reason.is_empty() {
                return Some(Err(
                    "`flows-image: opaque` requires a justification (why the hand-written \
                     serializer captures or rebuilds this state)"
                        .into(),
                ));
            }
            return Some(Ok(ItemAnno::ImageOpaque));
        }
        return Some(Err(format!(
            "unknown flows-image directive `{}` (expected `root` or `opaque <why>`)",
            rest.split_whitespace().next().unwrap_or("")
        )));
    }
    if let Some(rest) = text.strip_prefix("flows-wire:") {
        let mut words = rest.split_whitespace();
        let verb = words.next().unwrap_or("");
        let proto: String = words
            .next()
            .unwrap_or("")
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if proto.is_empty() {
            return Some(Err(format!("flows-wire `{verb}` names no protocol")));
        }
        return match verb {
            "defines" => Some(Ok(ItemAnno::WireDefines(proto))),
            "handles" => Some(Ok(ItemAnno::WireHandles(proto))),
            _ => Some(Err(format!(
                "unknown flows-wire directive `{verb}` (expected `defines <proto>` or \
                 `handles <proto>`)"
            ))),
        };
    }
    None
}

/// Gather the valid directives attached to the item declared on
/// `decl_line`: its own trailing comment plus the contiguous
/// comment/attribute block above.
fn collect_annos(stripped: &Stripped, decl_line: usize) -> Vec<ItemAnno> {
    let mut annos = Vec::new();
    let mut take = |line: usize| {
        if let Some(Ok(a)) = parse_directive(&stripped.comments[line]) {
            annos.push(a);
        }
    };
    take(decl_line);
    let mut j = decl_line;
    while j > 0 {
        j -= 1;
        let has_comment = !stripped.comments[j].is_empty();
        let code = &stripped.code[j];
        if !has_comment && !crate::is_transparent(code) {
            break;
        }
        if !code.trim().is_empty() && !crate::is_transparent(code) {
            // Trailing comment of an unrelated code line: not ours.
            break;
        }
        if has_comment {
            take(j);
        }
    }
    annos
}

/// Whole-file pass reporting malformed directives exactly once, whether
/// or not they sit above an item.
fn scan_anno_errors(stripped: &Stripped, errors: &mut Vec<(usize, String)>) {
    for (i, comment) in stripped.comments.iter().enumerate() {
        if comment.is_empty() {
            continue;
        }
        if let Some(Err(msg)) = parse_directive(comment) {
            errors.push((i, msg));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::strip;

    fn parse(src: &str) -> FileSymbols {
        parse_file(&strip(src))
    }

    #[test]
    fn struct_fields_and_refs() {
        let s = parse(
            "pub struct RankBox {\n    pub tid: ThreadId,\n    pub send_seq: HashMap<u64, u64>,\n    raw: *mut u8,\n}\n",
        );
        assert_eq!(s.types.len(), 1);
        let t = &s.types[0];
        assert_eq!(t.name, "RankBox");
        assert_eq!(t.fields.len(), 3);
        assert_eq!(t.fields[0].name, "tid");
        assert!(t.fields[1].refs.contains(&"HashMap".to_string()));
        assert!(t.fields[2].raw_ptr);
    }

    #[test]
    fn tuple_unit_and_generic_structs() {
        let s = parse(
            "struct Wrap(pub Arc<Inner>, usize);\nstruct Unit;\nstruct G<T: Clone> where T: Send { x: T }\n",
        );
        assert_eq!(s.types.len(), 3);
        assert_eq!(s.types[0].fields[0].name, "0");
        assert!(s.types[0].fields[0].refs.contains(&"Inner".to_string()));
        assert!(s.types[1].fields.is_empty());
        assert_eq!(s.types[2].fields[0].refs, vec!["T".to_string()]);
    }

    #[test]
    fn enum_variants_and_payloads() {
        let s = parse(
            "enum FlavorData {\n    Standard { stack: Vec<u8> },\n    Iso(Box<ThreadSlab>),\n    Lazy = 3,\n}\n",
        );
        let t = &s.types[0];
        assert!(t.is_enum);
        assert_eq!(t.variants.len(), 3);
        assert_eq!(t.fields[0].name, "Standard.stack");
        assert_eq!(t.fields[1].name, "Iso.0");
        assert!(t.fields[1].refs.contains(&"ThreadSlab".to_string()));
    }

    #[test]
    fn impls_fns_mods_consts() {
        let s = parse(
            "impl flows_pup::Pup for Tcb {\n    fn size(&self) -> usize { 0 }\n}\nmod ctrl {\n    pub const STATS: u8 = 1;\n}\nfn free() -> impl Iterator<Item = u8> { std::iter::empty() }\n",
        );
        assert_eq!(s.impls.len(), 1);
        assert_eq!(s.impls[0].trait_name.as_deref(), Some("Pup"));
        assert_eq!(s.impls[0].type_name.as_deref(), Some("Tcb"));
        assert_eq!(s.fns.len(), 2, "method + free fn, no phantom `impl Iterator` item");
        assert_eq!(s.mods.len(), 1);
        assert_eq!(s.consts, vec![("STATS".to_string(), 4)]);
    }

    #[test]
    fn fn_spans_cover_bodies() {
        let s = parse("fn a() {\n    let x = 1;\n    drop(x);\n}\nfn b() {}\n");
        assert_eq!(s.fns[0].line, 0);
        assert_eq!(s.fns[0].end_line, 3);
        assert_eq!(s.fns[1].line, 4);
    }

    #[test]
    fn annotations_attach_through_attr_blocks() {
        let s = parse(
            "// flows-image: root\n#[derive(Debug)]\npub struct Tcb { id: u64 }\n\n// flows-wire: defines net-ctrl\nmod ctrl { pub const A: u8 = 1; }\n\n// flows-wire: handles net-ctrl\nfn pump() {}\n",
        );
        assert_eq!(s.types[0].annos, vec![ItemAnno::ImageRoot]);
        assert_eq!(s.mods[0].annos, vec![ItemAnno::WireDefines("net-ctrl".into())]);
        assert_eq!(s.fns[0].annos, vec![ItemAnno::WireHandles("net-ctrl".into())]);
    }

    #[test]
    fn malformed_directives_are_errors() {
        let s = parse("// flows-image: opaque\nstruct A;\n// flows-wire: dispatches x\nfn f() {}\n");
        assert_eq!(s.anno_errors.len(), 2);
        // The bad opaque is not silently honored as an annotation.
        assert!(s.types[0].annos.is_empty());
    }

    #[test]
    fn unanchored_mentions_are_inert() {
        let s = parse("// see the `flows-image: root` marker on Tcb\nstruct B { x: u8 }\n");
        assert!(s.types[0].annos.is_empty());
        assert!(s.anno_errors.is_empty());
    }
}
