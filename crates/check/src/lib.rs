//! # flows-check — `flowslint`, migration-safety lints for this workspace
//!
//! The paper's migratable-thread techniques rest on invariants `rustc`
//! cannot check: global state must not leak into migratable code (§3.3),
//! raw addresses must not be serialized across a stack-copy migration
//! (§3.4.1), and every syscall must flow through `flows-sys` so the
//! `SyscallCounts` accounting that `flows-trace` reports stays honest.
//! This crate enforces those invariants *at the source level* with a
//! hand-rolled lexer (see [`lexer`]) — dependency-free, no rustc plugin,
//! fast enough to run on every CI invocation.
//!
//! ## Rules
//!
//! | id | checks |
//! |----|--------|
//! | `unsafe-safety-comment` | every `unsafe` occurrence carries a `// SAFETY:` comment (same line, the contiguous comment/attribute block above, or a `# Safety` doc section) |
//! | `no-global-state` | `static mut` / `thread_local!` forbidden in the migratable crates (`core`, `ampi`, `npb`, `chare`) outside `core/src/privatize.rs` |
//! | `pup-raw-pointer` | raw-pointer fields flagged in any type that implements `Pup` (raw addresses do not survive stack-copy migration) |
//! | `no-direct-libc` | `libc::` forbidden outside `flows-sys` (bypasses `SyscallCounts`) |
//! | `migration-image-closure` | no process-local state (raw pointers, fds, locks, channel endpoints, hash-randomized maps) transitively reachable from a migration-image root (`Tcb`, `RankMove`, `RankBox`, and annotated roots) |
//! | `atomic-protocol` | every annotated atomic publish/consume site uses a Release/Acquire-class ordering, and every tag has both sides |
//! | `wire-exhaustive` | every message of an annotated wire protocol is matched in some annotated handler fn |
//!
//! The last three are interprocedural: they run on a workspace-wide
//! symbol graph (see [`parse`]) built from the token stream the [`lexer`]
//! front end produces, and are driven by source annotations (the grammar
//! is documented in [`parse`]).
//!
//! ## Waivers
//!
//! A deliberate exception is declared in a comment:
//!
//! ```text
//! // flowslint::allow(no-direct-libc): fork-based benchmark child, by design
//! ```
//!
//! A waiver on a pure-comment line covers the next line that contains
//! code; on a code line it covers that line. The `allow-file` variant,
//! written the same way, waives the rule for the whole file. Waivers
//! must name a real rule — unknown ids are themselves findings — so a
//! typo cannot silently disable checking.

pub mod baseline;
mod graph_rules;
pub mod interleave;
pub mod lexer;
pub mod parse;
pub mod report;
pub mod tokens;

use lexer::{find_token, strip, Stripped};
use std::collections::HashSet;
use std::fmt;
use std::path::Path;

/// The seven lint rules (see crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rule {
    /// `unsafe` without a `// SAFETY:` / `# Safety` justification.
    UnsafeSafetyComment,
    /// `static mut` / `thread_local!` in migratable crates.
    NoGlobalState,
    /// Raw-pointer field in a `Pup`-implementing type.
    PupRawPointer,
    /// Direct `libc::` use outside `flows-sys`.
    NoDirectLibc,
    /// Process-local state reachable from a migration-image root.
    MigrationImageClosure,
    /// Annotated atomic publish/consume with a too-weak ordering, or an
    /// unpaired tag.
    AtomicProtocol,
    /// Wire-protocol message matched in no annotated handler.
    WireExhaustive,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::UnsafeSafetyComment,
        Rule::NoGlobalState,
        Rule::PupRawPointer,
        Rule::NoDirectLibc,
        Rule::MigrationImageClosure,
        Rule::AtomicProtocol,
        Rule::WireExhaustive,
    ];

    /// The stable id used in reports and waiver comments.
    pub fn id(self) -> &'static str {
        match self {
            Rule::UnsafeSafetyComment => "unsafe-safety-comment",
            Rule::NoGlobalState => "no-global-state",
            Rule::PupRawPointer => "pup-raw-pointer",
            Rule::NoDirectLibc => "no-direct-libc",
            Rule::MigrationImageClosure => "migration-image-closure",
            Rule::AtomicProtocol => "atomic-protocol",
            Rule::WireExhaustive => "wire-exhaustive",
        }
    }

    /// One-line description (SARIF rule metadata, `--list-rules`).
    pub fn describe(self) -> &'static str {
        match self {
            Rule::UnsafeSafetyComment => {
                "every `unsafe` carries a SAFETY justification"
            }
            Rule::NoGlobalState => {
                "no `static mut` / `thread_local!` in migratable crates"
            }
            Rule::PupRawPointer => {
                "no raw-pointer fields in Pup-serialized types"
            }
            Rule::NoDirectLibc => "all syscalls flow through flows-sys",
            Rule::MigrationImageClosure => {
                "no process-local state reachable from a migration-image root"
            }
            Rule::AtomicProtocol => {
                "annotated atomic publish/consume sites carry Release/Acquire \
                 orderings and pair up"
            }
            Rule::WireExhaustive => {
                "every wire-protocol message is matched in an annotated handler"
            }
        }
    }

    fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.id() == id)
    }
}

/// One lint violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired (`None` for meta-findings like bad waivers).
    pub rule: Option<Rule>,
    /// Human explanation.
    pub msg: String,
    /// The flagged line's code text, trimmed — the [`baseline`] keys
    /// entries on its hash so they survive line drift.
    pub context: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule = self.rule.map(|r| r.id()).unwrap_or("flowslint");
        write!(f, "{}:{}: [{}] {}", self.file, self.line, rule, self.msg)
    }
}

/// Crates whose code runs on migratable thread stacks: per-thread state
/// must be privatized (paper §3.3), never process-global.
const MIGRATABLE_CRATES: [&str; 4] = ["core", "ampi", "npb", "chare"];

/// The one sanctioned home of thread-local machinery in migratable
/// crates: the swap-global privatization layer itself.
const PRIVATIZE_FILE: &str = "core/src/privatize.rs";

pub(crate) struct SourceFile {
    pub(crate) path: String,
    /// `crates/<key>/...` → `<key>`; everything else → "".
    pub(crate) crate_key: String,
    pub(crate) stripped: Stripped,
    /// Per-line waived rules (line-scoped `flowslint::allow`).
    line_waivers: Vec<HashSet<Rule>>,
    /// File-scoped waivers (`flowslint::allow-file`).
    file_waivers: HashSet<Rule>,
}

fn crate_key(path: &str) -> String {
    let mut parts = path.split('/');
    if parts.next() == Some("crates") {
        parts.next().unwrap_or("").to_string()
    } else {
        String::new()
    }
}

/// Parse line- and file-scoped waiver markers out of one comment line.
/// Returns (line rules, file rules, bad ids).
fn parse_waivers(comment: &str) -> (Vec<Rule>, Vec<Rule>, Vec<String>) {
    let (mut line, mut file, mut bad) = (Vec::new(), Vec::new(), Vec::new());
    let mut rest = comment;
    while let Some(at) = rest.find("flowslint::allow") {
        rest = &rest[at + "flowslint::allow".len()..];
        let file_scope = rest.starts_with("-file");
        if file_scope {
            rest = &rest["-file".len()..];
        }
        let Some(open) = rest.find('(') else { continue };
        let Some(close) = rest[open..].find(')') else { continue };
        let ids = &rest[open + 1..open + close];
        for id in ids.split(',') {
            let id = id.trim();
            match Rule::from_id(id) {
                Some(r) if file_scope => file.push(r),
                Some(r) => line.push(r),
                None => bad.push(id.to_string()),
            }
        }
        rest = &rest[open + close..];
    }
    (line, file, bad)
}

fn analyze(path: &str, src: &str, findings: &mut Vec<Finding>) -> SourceFile {
    let stripped = strip(src);
    let n = stripped.code.len();
    let mut line_waivers: Vec<HashSet<Rule>> = vec![HashSet::new(); n];
    let mut file_waivers = HashSet::new();
    for i in 0..n {
        let comment = &stripped.comments[i];
        if comment.is_empty() {
            continue;
        }
        let (line, file, bad) = parse_waivers(comment);
        for id in bad {
            findings.push(Finding {
                file: path.to_string(),
                line: i + 1,
                rule: None,
                msg: format!("waiver names unknown rule `{id}`"),
                context: stripped.code[i].trim().to_string(),
            });
        }
        file_waivers.extend(file);
        if line.is_empty() {
            continue;
        }
        // A waiver covers its own line; a pure-comment waiver line also
        // covers everything down to (and including) the next code line.
        line_waivers[i].extend(line.iter().copied());
        if stripped.code[i].trim().is_empty() {
            for (j, lw) in line_waivers.iter_mut().enumerate().take(n).skip(i + 1) {
                lw.extend(line.iter().copied());
                if !stripped.code[j].trim().is_empty() {
                    break;
                }
            }
        }
    }
    SourceFile {
        path: path.to_string(),
        crate_key: crate_key(path),
        stripped,
        line_waivers,
        file_waivers,
    }
}

impl SourceFile {
    pub(crate) fn waived(&self, rule: Rule, line_idx: usize) -> bool {
        self.file_waivers.contains(&rule)
            || self.line_waivers.get(line_idx).is_some_and(|w| w.contains(&rule))
    }

    fn line_context(&self, line_idx: usize) -> String {
        self.stripped
            .code
            .get(line_idx)
            .map(|c| c.trim().to_string())
            .unwrap_or_default()
    }

    pub(crate) fn report(&self, rule: Rule, line_idx: usize, msg: String, out: &mut Vec<Finding>) {
        if !self.waived(rule, line_idx) {
            out.push(Finding {
                file: self.path.clone(),
                line: line_idx + 1,
                rule: Some(rule),
                msg,
                context: self.line_context(line_idx),
            });
        }
    }

    /// An unwaivable meta-finding (malformed annotation), mirroring the
    /// unknown-waiver-id findings.
    pub(crate) fn meta_finding(&self, line_idx: usize, msg: String) -> Finding {
        Finding {
            file: self.path.clone(),
            line: line_idx + 1,
            rule: None,
            msg,
            context: self.line_context(line_idx),
        }
    }
}

fn mentions_safety(comment: &str) -> bool {
    comment.contains("SAFETY") || comment.contains("# Safety")
}

/// A line that may sit between a SAFETY comment and its `unsafe`:
/// blank, or an attribute.
pub(crate) fn is_transparent(code: &str) -> bool {
    let t = code.trim();
    t.is_empty() || t.starts_with("#[") || t.starts_with("#![") || t == ")]"
}

fn rule_unsafe(f: &SourceFile, out: &mut Vec<Finding>) {
    for i in 0..f.stripped.code.len() {
        if find_token(&f.stripped.code[i], "unsafe").is_empty() {
            continue;
        }
        let mut covered = mentions_safety(&f.stripped.comments[i]);
        let mut j = i;
        while !covered && j > 0 {
            j -= 1;
            let has_comment = !f.stripped.comments[j].is_empty();
            if mentions_safety(&f.stripped.comments[j]) {
                covered = true;
                break;
            }
            // Keep climbing through the contiguous comment/attribute
            // block; stop at the first real code line.
            if !has_comment && !is_transparent(&f.stripped.code[j]) {
                break;
            }
        }
        if !covered {
            f.report(
                Rule::UnsafeSafetyComment,
                i,
                "`unsafe` without a `// SAFETY:` comment (or `# Safety` doc section)".into(),
                out,
            );
        }
    }
}

fn rule_global_state(f: &SourceFile, out: &mut Vec<Finding>) {
    if !MIGRATABLE_CRATES.contains(&f.crate_key.as_str()) || f.path.ends_with(PRIVATIZE_FILE) {
        return;
    }
    for (i, code) in f.stripped.code.iter().enumerate() {
        for at in find_token(code, "static") {
            let rest = code[at + "static".len()..].trim_start();
            if rest.starts_with("mut ") || rest.starts_with("mut\t") {
                f.report(
                    Rule::NoGlobalState,
                    i,
                    "`static mut` in a migratable crate: state shared across threads \
                     does not migrate (privatize it via `core/src/privatize.rs`)"
                        .into(),
                    out,
                );
            }
        }
        for at in find_token(code, "thread_local") {
            if code[at + "thread_local".len()..].trim_start().starts_with('!') {
                f.report(
                    Rule::NoGlobalState,
                    i,
                    "`thread_local!` in a migratable crate: TLS belongs to the OS \
                     thread, not the migratable flow (\"Fibers are not (P)Threads\")"
                        .into(),
                    out,
                );
            }
        }
    }
}

/// Collect names of types that implement `Pup` in this file, from
/// `impl ... Pup for X` and `pup_fields!(X { ... })`.
fn pup_types(f: &SourceFile, into: &mut HashSet<String>) {
    for code in &f.stripped.code {
        if !find_token(code, "impl").is_empty() {
            if let Some(at) = code.find("Pup for ") {
                // Exclude e.g. `MyPup for`: require a non-ident char (or
                // `::` path) before `Pup`.
                let ok = at == 0 || {
                    let prev = code.as_bytes()[at - 1] as char;
                    !(prev.is_alphanumeric() || prev == '_') || code[..at].ends_with("::")
                };
                if ok {
                    let name: String = code[at + "Pup for ".len()..]
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        into.insert(name);
                    }
                }
            }
        }
        for at in find_token(code, "pup_fields") {
            let rest = code[at + "pup_fields".len()..].trim_start();
            if let Some(rest) = rest.strip_prefix('!') {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('(') {
                    let name: String = rest
                        .trim_start()
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !name.is_empty() {
                        into.insert(name);
                    }
                }
            }
        }
    }
}

/// A raw-pointer field candidate: `(line index, type name, field text)`.
fn raw_pointer_fields(f: &SourceFile) -> Vec<(usize, String, String)> {
    let mut found = Vec::new();
    let code = &f.stripped.code;
    let mut i = 0;
    while i < code.len() {
        let line = &code[i];
        let Some(at) = find_token(line, "struct").first().copied() else {
            i += 1;
            continue;
        };
        let name: String = line[at + "struct".len()..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if name.is_empty() {
            i += 1;
            continue;
        }
        // Walk the struct body (brace- or paren-delimited); a `;` before
        // any opener means a unit struct.
        let mut depth = 0i32;
        let mut j = i;
        let mut entered = false;
        'body: while j < code.len() {
            let start_col = if j == i { at } else { 0 };
            for (k, ch) in code[j][start_col..].char_indices() {
                let col = start_col + k;
                match ch {
                    '{' | '(' => {
                        depth += 1;
                        entered = true;
                    }
                    '}' | ')' => {
                        depth -= 1;
                        if entered && depth == 0 {
                            break 'body;
                        }
                    }
                    ';' if !entered => break 'body,
                    '*' => {
                        let rest = &code[j][col..];
                        if entered
                            && (rest.starts_with("*mut ")
                                || rest.starts_with("*const ")
                                || rest.starts_with("*mut\t")
                                || rest.starts_with("*const\t"))
                        {
                            found.push((j, name.clone(), code[j].trim().to_string()));
                        }
                    }
                    _ => {}
                }
            }
            j += 1;
        }
        i += 1;
    }
    found
}

fn rule_no_libc(f: &SourceFile, out: &mut Vec<Finding>) {
    if f.crate_key == "sys" {
        return;
    }
    for (i, code) in f.stripped.code.iter().enumerate() {
        for at in find_token(code, "libc") {
            if code[at + "libc".len()..].trim_start().starts_with("::") {
                f.report(
                    Rule::NoDirectLibc,
                    i,
                    "direct `libc::` call outside `flows-sys` bypasses the \
                     `SyscallCounts` accounting that `flows-trace` reports"
                        .into(),
                    out,
                );
                break; // one finding per line is enough
            }
        }
    }
}

/// Lint a set of in-memory sources. `files` is `(workspace-relative
/// path, contents)`. This is the engine behind [`lint_workspace`] and
/// the entry point fixture tests drive directly.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let parsed: Vec<SourceFile> = files
        .iter()
        .map(|(p, s)| analyze(p, s, &mut findings))
        .collect();
    // The symbol graph: one parse per file, consumed by the
    // interprocedural rules below.
    let syms: Vec<parse::FileSymbols> = parsed
        .iter()
        .map(|f| parse::parse_file(&f.stripped))
        .collect();
    for (f, s) in parsed.iter().zip(&syms) {
        for (line_idx, msg) in &s.anno_errors {
            findings.push(f.meta_finding(*line_idx, msg.clone()));
        }
    }
    // Pup-implementing type names are collected workspace-wide: the impl
    // and the struct may live in different files.
    let mut pup_names = HashSet::new();
    for f in &parsed {
        pup_types(f, &mut pup_names);
    }
    for f in &parsed {
        rule_unsafe(f, &mut findings);
        rule_global_state(f, &mut findings);
        rule_no_libc(f, &mut findings);
        for (line_idx, type_name, field) in raw_pointer_fields(f) {
            if pup_names.contains(&type_name) {
                f.report(
                    Rule::PupRawPointer,
                    line_idx,
                    format!(
                        "raw-pointer field in `Pup` type `{type_name}` ({field}): raw \
                         addresses do not survive stack-copy migration — store a \
                         slot-relative offset or index instead"
                    ),
                    &mut findings,
                );
            }
        }
    }
    graph_rules::rule_image_closure(&parsed, &syms, &mut findings);
    graph_rules::rule_atomic_protocol(&parsed, &mut findings);
    graph_rules::rule_wire_exhaustive(&parsed, &syms, &mut findings);
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Should this workspace-relative path be linted?
fn lintable(rel: &str) -> bool {
    if !rel.ends_with(".rs") {
        return false;
    }
    // Vendored shims model *external* crates (the libc shim IS libc);
    // build outputs and fixtures are not our source.
    for part in rel.split('/') {
        if matches!(part, "vendor" | "target" | ".git" | "fixtures") {
            return false;
        }
    }
    true
}

fn collect(dir: &Path, root: &Path, files: &mut Vec<(String, String)>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        if path.is_dir() {
            if !matches!(
                path.file_name().and_then(|n| n.to_str()),
                Some("vendor") | Some("target") | Some(".git") | Some("fixtures")
            ) {
                collect(&path, root, files)?;
            }
        } else if lintable(&rel) {
            files.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(())
}

/// Walk the workspace rooted at `root` and lint every non-vendored
/// `.rs` file. Returns `(findings, files scanned)`.
pub fn lint_workspace(root: &Path) -> std::io::Result<(Vec<Finding>, usize)> {
    let mut files = Vec::new();
    collect(root, root, &mut files)?;
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let n = files.len();
    Ok((lint_sources(&files), n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint_one(path: &str, src: &str) -> Vec<Finding> {
        lint_sources(&[(path.to_string(), src.to_string())])
    }

    #[test]
    fn crate_keys() {
        assert_eq!(crate_key("crates/core/src/scheduler.rs"), "core");
        assert_eq!(crate_key("src/main.rs"), "");
    }

    #[test]
    fn waiver_parsing() {
        let (l, f, bad) = parse_waivers(" flowslint::allow(no-direct-libc): reason");
        assert_eq!(l, vec![Rule::NoDirectLibc]);
        assert!(f.is_empty() && bad.is_empty());
        let (l, f, bad) = parse_waivers(" flowslint::allow-file(no-global-state)");
        assert!(l.is_empty());
        assert_eq!(f, vec![Rule::NoGlobalState]);
        assert!(bad.is_empty());
        let (_, _, bad) = parse_waivers(" flowslint::allow(no-such-rule)");
        assert_eq!(bad, vec!["no-such-rule".to_string()]);
    }

    #[test]
    fn unknown_waiver_id_is_a_finding() {
        let f = lint_one("crates/x/src/a.rs", "// flowslint::allow(nope)\nfn main() {}\n");
        assert_eq!(f.len(), 1);
        assert!(f[0].rule.is_none());
    }
}
