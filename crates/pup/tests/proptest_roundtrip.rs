//! Property tests: PUP round-trips are exact for arbitrary value trees and
//! unpacking never panics on arbitrary (including corrupt) byte soup.

use flows_pup::{from_bytes, pup_fields, to_bytes};
use proptest::prelude::*;

#[derive(Default, Debug, PartialEq, Clone)]
struct Record {
    id: u64,
    weight: f64,
    name: String,
    samples: Vec<i32>,
    maybe: Option<u16>,
    pairs: Vec<(u8, String)>,
}
pup_fields!(Record {
    id,
    weight,
    name,
    samples,
    maybe,
    pairs
});

fn arb_record() -> impl Strategy<Value = Record> {
    (
        any::<u64>(),
        any::<f64>().prop_filter("NaN compares unequal", |f| !f.is_nan()),
        ".{0,40}",
        proptest::collection::vec(any::<i32>(), 0..50),
        any::<Option<u16>>(),
        proptest::collection::vec((any::<u8>(), ".{0,10}"), 0..10),
    )
        .prop_map(|(id, weight, name, samples, maybe, pairs)| Record {
            id,
            weight,
            name,
            samples,
            maybe,
            pairs,
        })
}

proptest! {
    #[test]
    fn record_roundtrips(r in arb_record()) {
        let mut src = r.clone();
        let bytes = to_bytes(&mut src);
        let back: Record = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, r);
    }

    #[test]
    fn nested_vecs_roundtrip(v in proptest::collection::vec(
        proptest::collection::vec(any::<u64>(), 0..20), 0..20)) {
        let mut src = v.clone();
        let bytes = to_bytes(&mut src);
        let back: Vec<Vec<u64>> = from_bytes(&bytes).unwrap();
        prop_assert_eq!(back, v);
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Decoding garbage may fail, but must fail with an error value.
        let _ = from_bytes::<Record>(&bytes);
        let _ = from_bytes::<Vec<String>>(&bytes);
        let _ = from_bytes::<Option<Vec<u32>>>(&bytes);
    }

    #[test]
    fn sizing_matches_packing(r in arb_record()) {
        let mut src = r;
        let sized = flows_pup::packed_size(&mut src);
        let packed = to_bytes(&mut src);
        prop_assert_eq!(sized, packed.len());
    }
}
