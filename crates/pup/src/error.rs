//! Unpacking errors.

use std::fmt;

/// Why unpacking failed. Packing and sizing are infallible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PupError {
    /// The buffer ended before the traversal was satisfied.
    Truncated {
        /// Bytes the traversal tried to read at the failure point.
        needed: usize,
        /// Offset at which the shortfall occurred.
        at: usize,
    },
    /// `from_bytes` requires full consumption; this many bytes were left.
    TrailingBytes(usize),
    /// A `String` field held bytes that are not valid UTF-8.
    InvalidUtf8 {
        /// Offset of the string payload in the buffer.
        at: usize,
    },
    /// A length prefix or tag had an impossible value.
    Corrupt(&'static str),
}

impl fmt::Display for PupError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PupError::Truncated { needed, at } => {
                write!(f, "pup buffer truncated: needed {needed} bytes at offset {at}")
            }
            PupError::TrailingBytes(n) => write!(f, "pup buffer has {n} trailing bytes"),
            PupError::InvalidUtf8 { at } => write!(f, "invalid UTF-8 in string at offset {at}"),
            PupError::Corrupt(what) => write!(f, "corrupt pup data: {what}"),
        }
    }
}

impl std::error::Error for PupError {}
