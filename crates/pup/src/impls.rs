//! [`Pup`] implementations for primitives and standard containers.

use crate::error::PupError;
use crate::puper::{Pup, Puper};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::hash::Hash;

macro_rules! pup_le_prim {
    ($($t:ty),*) => {$(
        impl Pup for $t {
            fn pup(&mut self, p: &mut Puper) {
                let mut b = self.to_le_bytes();
                p.raw(&mut b);
                if p.is_unpacking() {
                    *self = <$t>::from_le_bytes(b);
                }
            }
        }
    )*};
}

pup_le_prim!(u8, u16, u32, u64, u128, i8, i16, i32, i64, i128, f32, f64);

impl Pup for usize {
    fn pup(&mut self, p: &mut Puper) {
        // Fixed 8-byte encoding so packed images are word-size independent.
        let mut v = *self as u64;
        v.pup(p);
        if p.is_unpacking() {
            *self = v as usize;
        }
    }
}

impl Pup for isize {
    fn pup(&mut self, p: &mut Puper) {
        let mut v = *self as i64;
        v.pup(p);
        if p.is_unpacking() {
            *self = v as isize;
        }
    }
}

impl Pup for bool {
    fn pup(&mut self, p: &mut Puper) {
        let mut b = *self as u8;
        b.pup(p);
        if p.is_unpacking() {
            if b > 1 {
                p.fail(PupError::Corrupt("bool tag"));
            }
            *self = b != 0;
        }
    }
}

impl Pup for char {
    fn pup(&mut self, p: &mut Puper) {
        let mut v = *self as u32;
        v.pup(p);
        if p.is_unpacking() {
            match char::from_u32(v) {
                Some(c) => *self = c,
                None => p.fail(PupError::Corrupt("char scalar")),
            }
        }
    }
}

impl Pup for () {
    fn pup(&mut self, _p: &mut Puper) {}
}

fn pup_len(p: &mut Puper, len: usize) -> usize {
    let mut n = len as u64;
    n.pup(p);
    n as usize
}

impl<T: Pup + Default> Pup for Vec<T> {
    fn pup(&mut self, p: &mut Puper) {
        let n = pup_len(p, self.len());
        if p.is_unpacking() {
            // Guard against hostile length prefixes: cap the up-front
            // reservation; pushes still grow geometrically if the data is
            // really that long (it will hit Truncated first otherwise).
            self.clear();
            self.reserve(n.min(64 * 1024));
            for _ in 0..n {
                if p.has_error() {
                    return;
                }
                let mut v = T::default();
                v.pup(p);
                self.push(v);
            }
        } else {
            for v in self.iter_mut() {
                v.pup(p);
            }
        }
    }
}

impl<T: Pup + Default> Pup for VecDeque<T> {
    fn pup(&mut self, p: &mut Puper) {
        let n = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            for _ in 0..n {
                if p.has_error() {
                    return;
                }
                let mut v = T::default();
                v.pup(p);
                self.push_back(v);
            }
        } else {
            for v in self.iter_mut() {
                v.pup(p);
            }
        }
    }
}

impl Pup for String {
    fn pup(&mut self, p: &mut Puper) {
        // SAFETY-free approach: round-trip through a byte vector and
        // validate on unpack.
        if p.is_unpacking() {
            let at = p.offset();
            let mut bytes: Vec<u8> = Vec::new();
            bytes.pup(p);
            match String::from_utf8(bytes) {
                Ok(s) => *self = s,
                Err(_) => p.fail(PupError::InvalidUtf8 { at }),
            }
        } else {
            // Pack/size: emit length + raw bytes without copying.
            pup_len(p, self.len());
            // raw() does not mutate outside unpack mode.
            let ptr = self.as_ptr() as *mut u8;
            // SAFETY: in pack/size mode `raw` only reads the buffer; we
            // reconstruct a unique &mut over our own bytes for the call.
            let slice = unsafe { std::slice::from_raw_parts_mut(ptr, self.len()) };
            p.raw(slice);
        }
    }
}

impl<T: Pup + Default> Pup for Option<T> {
    fn pup(&mut self, p: &mut Puper) {
        let mut tag = self.is_some() as u8;
        tag.pup(p);
        if p.is_unpacking() {
            match tag {
                0 => *self = None,
                1 => {
                    let mut v = T::default();
                    v.pup(p);
                    *self = Some(v);
                }
                _ => p.fail(PupError::Corrupt("Option tag")),
            }
        } else if let Some(v) = self {
            v.pup(p);
        }
    }
}

impl<T: Pup + Default> Pup for Box<T> {
    fn pup(&mut self, p: &mut Puper) {
        (**self).pup(p);
    }
}

impl<T: Pup, const N: usize> Pup for [T; N] {
    fn pup(&mut self, p: &mut Puper) {
        for v in self.iter_mut() {
            v.pup(p);
        }
    }
}

impl<K, V> Pup for HashMap<K, V>
where
    K: Pup + Default + Eq + Hash,
    V: Pup + Default,
{
    fn pup(&mut self, p: &mut Puper) {
        let n = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            for _ in 0..n {
                if p.has_error() {
                    return;
                }
                let mut k = K::default();
                let mut v = V::default();
                k.pup(p);
                v.pup(p);
                self.insert(k, v);
            }
        } else {
            // NOTE: iteration order is unspecified, so two packs of the
            // same map may differ byte-wise; round-trips are still exact.
            for (k, v) in self.iter_mut() {
                // Keys are logically immutable in a map; read through a
                // temporary to keep the single-traversal contract.
                // SAFETY: `kk` is a bitwise copy of `*k` that is packed
                // (read-only traversal) and then forgotten, never dropped,
                // so ownership stays with the map and nothing is aliased
                // mutably.
                let mut kk = unsafe { std::ptr::read(k) };
                kk.pup(p);
                std::mem::forget(kk);
                v.pup(p);
            }
        }
    }
}

impl<K, V> Pup for BTreeMap<K, V>
where
    K: Pup + Default + Ord,
    V: Pup + Default,
{
    fn pup(&mut self, p: &mut Puper) {
        let n = pup_len(p, self.len());
        if p.is_unpacking() {
            self.clear();
            for _ in 0..n {
                if p.has_error() {
                    return;
                }
                let mut k = K::default();
                let mut v = V::default();
                k.pup(p);
                v.pup(p);
                self.insert(k, v);
            }
        } else {
            for (k, v) in self.iter_mut() {
                // SAFETY: as for HashMap above — the bitwise copy is only
                // packed and then forgotten, never dropped.
                let mut kk = unsafe { std::ptr::read(k) };
                kk.pup(p);
                std::mem::forget(kk);
                v.pup(p);
            }
        }
    }
}

macro_rules! pup_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Pup),+> Pup for ($($name,)+) {
            fn pup(&mut self, p: &mut Puper) {
                $( self.$idx.pup(p); )+
            }
        }
    };
}

pup_tuple!(A: 0);
pup_tuple!(A: 0, B: 1);
pup_tuple!(A: 0, B: 1, C: 2);
pup_tuple!(A: 0, B: 1, C: 2, D: 3);

#[cfg(test)]
mod tests {
    use crate::{from_bytes, from_bytes_prefix, packed_size, to_bytes, PupError};
    use std::collections::{BTreeMap, HashMap};

    fn roundtrip<T: crate::Pup + Default + PartialEq + std::fmt::Debug + Clone>(v: &T) {
        let mut src = v.clone();
        let bytes = to_bytes(&mut src);
        assert_eq!(bytes.len(), packed_size(&mut src), "size pass must agree");
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, v);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(&0u8);
        roundtrip(&0xABu8);
        roundtrip(&-12345i32);
        roundtrip(&u64::MAX);
        roundtrip(&i128::MIN);
        roundtrip(&3.25f64);
        roundtrip(&f32::NEG_INFINITY);
        roundtrip(&true);
        roundtrip(&'λ');
        roundtrip(&usize::MAX);
    }

    #[test]
    fn containers_roundtrip() {
        roundtrip(&vec![1u32, 2, 3]);
        roundtrip(&Vec::<u64>::new());
        roundtrip(&"héllo wörld".to_string());
        roundtrip(&String::new());
        roundtrip(&Some(42u16));
        roundtrip(&Option::<u16>::None);
        roundtrip(&[1u8, 2, 3, 4]);
        roundtrip(&(1u8, 2u32, "x".to_string()));
        roundtrip(&vec![vec![1u8], vec![], vec![2, 3]]);
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        roundtrip(&m);
        let mut h = HashMap::new();
        h.insert(1u64, "one".to_string());
        h.insert(2, "two".to_string());
        roundtrip(&h);
        let mut dq = std::collections::VecDeque::new();
        dq.push_back(5u8);
        dq.push_front(4);
        roundtrip(&dq);
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut v = vec![1u64, 2, 3];
        let bytes = to_bytes(&mut v);
        for cut in 0..bytes.len() {
            let r: Result<Vec<u64>, _> = from_bytes(&bytes[..cut]);
            assert!(
                matches!(r, Err(PupError::Truncated { .. })),
                "cut at {cut} must report truncation"
            );
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut v = 7u32;
        let mut bytes = to_bytes(&mut v);
        bytes.push(0);
        let r: Result<u32, _> = from_bytes(&bytes);
        assert_eq!(r, Err(PupError::TrailingBytes(1)));
    }

    #[test]
    fn prefix_decoding_reports_consumption() {
        let mut a = 1u32;
        let mut b = 2u64;
        let mut bytes = to_bytes(&mut a);
        bytes.extend(to_bytes(&mut b));
        let (x, used): (u32, usize) = from_bytes_prefix(&bytes).unwrap();
        assert_eq!(x, 1);
        assert_eq!(used, 4);
        let (y, used2): (u64, usize) = from_bytes_prefix(&bytes[used..]).unwrap();
        assert_eq!(y, 2);
        assert_eq!(used2, 8);
    }

    #[test]
    fn corrupt_tags_detected() {
        // Option tag must be 0/1.
        let bytes = vec![9u8];
        let r: Result<Option<u8>, _> = from_bytes(&bytes);
        assert!(matches!(r, Err(PupError::Corrupt(_))));
        // bool tag must be 0/1.
        let r: Result<bool, _> = from_bytes(&[7u8]);
        assert!(matches!(r, Err(PupError::Corrupt(_))));
        // Invalid UTF-8 in a String.
        let mut evil: Vec<u8> = vec![0xFFu8, 0xFE];
        let packed = to_bytes(&mut evil);
        let r: Result<String, _> = from_bytes(&packed);
        assert!(matches!(r, Err(PupError::InvalidUtf8 { .. })));
    }

    #[test]
    fn hostile_length_prefix_does_not_oom() {
        // A Vec claiming u64::MAX elements must fail fast on truncation,
        // not attempt a giant allocation.
        let mut bytes = Vec::new();
        bytes.extend(u64::MAX.to_le_bytes());
        let r: Result<Vec<u64>, _> = from_bytes(&bytes);
        assert!(matches!(r, Err(PupError::Truncated { .. })));
    }

    #[test]
    fn pup_fields_macro_works() {
        #[derive(Default, Debug, PartialEq, Clone)]
        struct Nested {
            id: u32,
            name: String,
        }
        crate::pup_fields!(Nested { id, name });

        #[derive(Default, Debug, PartialEq, Clone)]
        struct Outer {
            xs: Vec<f64>,
            inner: Nested,
            flag: bool,
        }
        crate::pup_fields!(Outer { xs, inner, flag });

        roundtrip(&Outer {
            xs: vec![1.5, -2.5],
            inner: Nested {
                id: 17,
                name: "zone".into(),
            },
            flag: true,
        });
    }
}
