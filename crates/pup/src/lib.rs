//! # flows-pup — the PUP (Pack/UnPack) framework
//!
//! The paper (§3.1.1) migrates heap state of object-oriented applications
//! with Charm++'s PUP framework: one user-written traversal of an object's
//! fields serves three operations — *sizing* (how many bytes will this
//! object occupy?), *packing* (serialize into a buffer) and *unpacking*
//! (reconstruct from a buffer). This crate is a faithful Rust rendition:
//!
//! ```
//! use flows_pup::{Pup, Puper, pup_fields, to_bytes, from_bytes};
//!
//! #[derive(Default, Debug, PartialEq)]
//! struct Particle { x: f64, y: f64, charge: i32, tags: Vec<u32> }
//! pup_fields!(Particle { x, y, charge, tags });
//!
//! let mut p = Particle { x: 1.0, y: -2.0, charge: 3, tags: vec![7, 8] };
//! let bytes = to_bytes(&mut p);
//! let q: Particle = from_bytes(&bytes).unwrap();
//! assert_eq!(p, q);
//! ```
//!
//! The same `pup` traversal drives all three modes, so sizing, packing and
//! unpacking can never drift apart — the property the Charm++ design is
//! built around.

#![warn(missing_docs)]

mod error;
mod impls;
mod puper;

pub use error::PupError;
pub use puper::{Pup, Puper};

/// Compute the packed size of `v` in bytes.
pub fn packed_size<T: Pup + ?Sized>(v: &mut T) -> usize {
    let mut p = Puper::sizer();
    v.pup(&mut p);
    p.size()
}

/// Pack `v` into a fresh byte vector.
///
/// `v` is `&mut` because the same traversal serves packing and unpacking;
/// packing never mutates the value.
pub fn to_bytes<T: Pup + ?Sized>(v: &mut T) -> Vec<u8> {
    let mut out = Vec::with_capacity(packed_size(v));
    let mut p = Puper::packer(&mut out);
    v.pup(&mut p);
    out
}

/// Pack `v` onto the end of `out`, returning the number of bytes appended.
pub fn pack_into<T: Pup + ?Sized>(v: &mut T, out: &mut Vec<u8>) -> usize {
    let before = out.len();
    let mut p = Puper::packer(out);
    v.pup(&mut p);
    out.len() - before
}

/// Unpack a `T` from `bytes`, requiring every byte to be consumed.
pub fn from_bytes<T: Pup + Default>(bytes: &[u8]) -> Result<T, PupError> {
    let mut v = T::default();
    let mut p = Puper::unpacker(bytes);
    v.pup(&mut p);
    p.finish_exact()?;
    Ok(v)
}

/// Unpack a `T` from the front of `bytes`, returning the value and the
/// number of bytes consumed (for streams of packed records).
pub fn from_bytes_prefix<T: Pup + Default>(bytes: &[u8]) -> Result<(T, usize), PupError> {
    let mut v = T::default();
    let mut p = Puper::unpacker(bytes);
    v.pup(&mut p);
    let used = p.finish()?;
    Ok((v, used))
}

/// Implement [`Pup`] for a struct by pupping the listed fields in order.
///
/// ```
/// use flows_pup::pup_fields;
/// #[derive(Default)]
/// struct S { a: u32, b: String }
/// pup_fields!(S { a, b });
/// ```
#[macro_export]
macro_rules! pup_fields {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::Pup for $ty {
            fn pup(&mut self, p: &mut $crate::Puper) {
                $( self.$field.pup(p); )*
            }
        }
    };
}
