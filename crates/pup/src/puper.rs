//! The three-mode traversal driver.

use crate::error::PupError;

enum Mode<'a> {
    Size {
        bytes: usize,
    },
    Pack {
        out: &'a mut Vec<u8>,
    },
    Unpack {
        input: &'a [u8],
        pos: usize,
        error: Option<PupError>,
    },
}

/// A single sizing / packing / unpacking pass over an object graph.
///
/// User code rarely constructs these directly — use the crate-level
/// [`crate::to_bytes`] / [`crate::from_bytes`] helpers — but custom [`Pup`]
/// implementations interact with the methods here.
pub struct Puper<'a> {
    mode: Mode<'a>,
}

impl<'a> Puper<'a> {
    /// A sizing pass.
    pub fn sizer() -> Puper<'static> {
        Puper {
            mode: Mode::Size { bytes: 0 },
        }
    }

    /// A packing pass appending to `out`.
    pub fn packer(out: &'a mut Vec<u8>) -> Puper<'a> {
        Puper {
            mode: Mode::Pack { out },
        }
    }

    /// An unpacking pass reading from `input`.
    pub fn unpacker(input: &'a [u8]) -> Puper<'a> {
        Puper {
            mode: Mode::Unpack {
                input,
                pos: 0,
                error: None,
            },
        }
    }

    /// True while unpacking — implementations use this to apply decoded
    /// bytes back to their fields.
    pub fn is_unpacking(&self) -> bool {
        matches!(self.mode, Mode::Unpack { .. })
    }

    /// True while sizing.
    pub fn is_sizing(&self) -> bool {
        matches!(self.mode, Mode::Size { .. })
    }

    /// True while packing.
    pub fn is_packing(&self) -> bool {
        matches!(self.mode, Mode::Pack { .. })
    }

    /// The core operation: in sizing mode count `buf.len()`, in packing
    /// mode append `buf`, in unpacking mode overwrite `buf` with the next
    /// bytes from the input (zero-filling after a truncation error, so the
    /// traversal stays memory-safe and the error surfaces at the end).
    pub fn raw(&mut self, buf: &mut [u8]) {
        match &mut self.mode {
            Mode::Size { bytes } => *bytes += buf.len(),
            Mode::Pack { out } => out.extend_from_slice(buf),
            Mode::Unpack { input, pos, error } => {
                if error.is_some() {
                    buf.fill(0);
                    return;
                }
                let end = *pos + buf.len();
                if end > input.len() {
                    *error = Some(PupError::Truncated {
                        needed: buf.len(),
                        at: *pos,
                    });
                    buf.fill(0);
                    return;
                }
                buf.copy_from_slice(&input[*pos..end]);
                *pos = end;
            }
        }
    }

    /// Record a decoding error discovered by an implementation (e.g. a
    /// corrupt tag). Subsequent reads return zeros; the error is reported
    /// by [`Puper::finish`].
    pub fn fail(&mut self, e: PupError) {
        if let Mode::Unpack { error, .. } = &mut self.mode {
            if error.is_none() {
                *error = Some(e);
            }
        } else {
            panic!("Puper::fail called while not unpacking: {e}");
        }
    }

    /// True when an unpacking error has already been recorded. Container
    /// implementations consult this to stop materializing elements once the
    /// input has failed (a hostile length prefix must not drive an
    /// unbounded loop of zero-filled elements).
    pub fn has_error(&self) -> bool {
        matches!(
            self.mode,
            Mode::Unpack {
                error: Some(_),
                ..
            }
        )
    }

    /// Current unpack offset (0 outside unpack mode). Implementations use
    /// it to produce located errors.
    pub fn offset(&self) -> usize {
        match &self.mode {
            Mode::Unpack { pos, .. } => *pos,
            _ => 0,
        }
    }

    /// Sizing result.
    pub(crate) fn size(&self) -> usize {
        match &self.mode {
            Mode::Size { bytes } => *bytes,
            _ => panic!("size() on a non-sizing Puper"),
        }
    }

    /// Finish an unpacking pass, returning bytes consumed.
    pub(crate) fn finish(self) -> Result<usize, PupError> {
        match self.mode {
            Mode::Unpack { pos, error, .. } => match error {
                Some(e) => Err(e),
                None => Ok(pos),
            },
            _ => panic!("finish() on a non-unpacking Puper"),
        }
    }

    /// Finish an unpacking pass, requiring full consumption of the input.
    pub(crate) fn finish_exact(self) -> Result<(), PupError> {
        match self.mode {
            Mode::Unpack { input, pos, error } => match error {
                Some(e) => Err(e),
                None if pos == input.len() => Ok(()),
                None => Err(PupError::TrailingBytes(input.len() - pos)),
            },
            _ => panic!("finish_exact() on a non-unpacking Puper"),
        }
    }
}

/// A migratable piece of state: one traversal drives sizing, packing and
/// unpacking (see crate docs).
pub trait Pup {
    /// Visit every field, in a fixed order, with [`Puper::raw`]-derived
    /// operations.
    fn pup(&mut self, p: &mut Puper);
}
