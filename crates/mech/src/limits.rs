//! Bounded "how many flows can we create?" probes — the paper's Table 2.
//!
//! The paper reports e.g. "250 pthreads on stock Linux", "90000+ user
//! threads". A naive probe would exhaust the machine, so every probe here
//! takes a hard cap and reports `created == cap` as "cap+", mirroring the
//! paper's "90000+" notation.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Outcome of one mechanism's probe.
#[derive(Debug, Clone)]
pub struct LimitReport {
    /// Mechanism name ("process", "kernel-thread", "user-thread").
    pub mechanism: &'static str,
    /// Flows actually created before failure or cap.
    pub created: usize,
    /// The cap the probe was run with.
    pub cap: usize,
    /// True when the probe stopped at the cap rather than at a failure.
    pub hit_cap: bool,
    /// The relevant configured limit (rlimit / kernel tunable), if known.
    pub configured_limit: Option<u64>,
    /// The creation error that ended the probe, if any.
    pub error: Option<String>,
}

impl LimitReport {
    /// A probe that failed before creating anything useful.
    pub fn errored(mechanism: &'static str, cap: usize, msg: &str) -> LimitReport {
        LimitReport {
            mechanism,
            created: 0,
            cap,
            hit_cap: false,
            configured_limit: None,
            error: Some(msg.to_string()),
        }
    }

    /// Table-2-style summary: `"8192+"` when capped, `"1234"` when a real
    /// limit was hit.
    pub fn summary(&self) -> String {
        if self.hit_cap {
            format!("{}+", self.created)
        } else {
            format!("{}", self.created)
        }
    }
}

/// Probe kernel threads: spawn blocked threads until creation fails or
/// `cap` is reached, then release and join them all.
pub fn probe_kernel_threads(cap: usize) -> LimitReport {
    let cap = cap.clamp(1, 65_536);
    let release = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();
    let mut error = None;
    for _ in 0..cap {
        let release = release.clone();
        match std::thread::Builder::new()
            .stack_size(16 * 1024)
            .spawn(move || {
                while !release.load(Ordering::Relaxed) {
                    std::thread::park_timeout(std::time::Duration::from_millis(50));
                }
            }) {
            Ok(h) => handles.push(h),
            Err(e) => {
                error = Some(e.to_string());
                break;
            }
        }
    }
    let created = handles.len();
    release.store(true, Ordering::SeqCst);
    for h in handles {
        h.thread().unpark();
        let _ = h.join();
    }
    LimitReport {
        mechanism: "kernel-thread",
        created,
        cap,
        hit_cap: created == cap,
        configured_limit: flows_sys::os::kernel_threads_max(),
        error,
    }
}

/// Probe an arbitrary user-level mechanism: `spawn(i)` must create flow
/// `i` and return whether it succeeded. The caller owns cleanup.
pub fn probe_user_threads(cap: usize, mut spawn: impl FnMut(usize) -> bool) -> LimitReport {
    let cap = cap.max(1);
    let mut created = 0;
    let mut error = None;
    for i in 0..cap {
        if spawn(i) {
            created += 1;
        } else {
            error = Some(format!("creation failed at flow {i}"));
            break;
        }
    }
    LimitReport {
        mechanism: "user-thread",
        created,
        cap,
        hit_cap: created == cap,
        configured_limit: None,
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_thread_probe_small_cap() {
        let r = probe_kernel_threads(16);
        assert_eq!(r.created, 16);
        assert!(r.hit_cap);
        assert_eq!(r.summary(), "16+");
    }

    #[test]
    fn user_probe_counts_until_failure() {
        let r = probe_user_threads(100, |i| i < 37);
        assert_eq!(r.created, 37);
        assert!(!r.hit_cap);
        assert_eq!(r.summary(), "37");
        assert!(r.error.is_some());
    }

    #[test]
    fn user_probe_hits_cap() {
        let r = probe_user_threads(10, |_| true);
        assert_eq!(r.summary(), "10+");
    }
}
