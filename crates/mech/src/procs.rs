//! Process-based flows of control (paper §2.1).
//!
//! Reproduces the §4.1 measurement methodology: N processes are forked,
//! each spins on `sched_yield()` while counting its yields into a shared
//! page; after a fixed wall-time the parent stops them and computes the
//! per-flow per-switch time. (The paper notes this benchmark is imperfect
//! because some kernels ignore repeated `sched_yield()`; we inherit that
//! honestly.)

// flowslint::allow-file(no-direct-libc): fork/pipe/mmap/waitpid here ARE
// the experiment — the §4.1 process-mechanism benchmark measures raw
// kernel flows of control, deliberately outside the flows-sys accounting
// that wraps the migratable runtime's own syscalls.
use flows_sys::error::{SysError, SysResult};
use flows_sys::page::page_align_up;

/// Result of a yield-storm benchmark over any mechanism.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldBench {
    /// Number of concurrent flows.
    pub flows: usize,
    /// Total `sched_yield` calls observed across all flows.
    pub total_yields: u64,
    /// Wall time of the measurement window in nanoseconds.
    pub elapsed_ns: u64,
}

impl YieldBench {
    /// Nanoseconds per context switch per flow: the figure the paper's
    /// y-axes report. With `n` flows sharing a processor, `total_yields`
    /// voluntary switches happened in `elapsed_ns`, so one switch costs
    /// `elapsed / total` — independent of `n` for a fair scheduler.
    pub fn ns_per_switch(&self) -> f64 {
        if self.total_yields == 0 {
            f64::INFINITY
        } else {
            self.elapsed_ns as f64 / self.total_yields as f64
        }
    }
}

/// Hard ceiling on process flows the benchmark will create.
pub const MAX_PROCESS_FLOWS: usize = 4096;

/// Run the process yield benchmark: fork `flows` children, let them spin
/// on `sched_yield` for `duration_ms`, and collect counts through a shared
/// anonymous mapping.
pub fn yield_benchmark(flows: usize, duration_ms: u64) -> SysResult<YieldBench> {
    use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
    if flows == 0 || flows > MAX_PROCESS_FLOWS {
        return Err(SysError::logic(
            "proc_bench",
            format!("flows must be 1..={MAX_PROCESS_FLOWS}"),
        ));
    }
    let bytes = page_align_up(16 + 8 * flows);
    // SAFETY: fresh anonymous shared mapping, used only through atomics.
    let shared = unsafe {
        libc::mmap(
            std::ptr::null_mut(),
            bytes,
            libc::PROT_READ | libc::PROT_WRITE,
            libc::MAP_SHARED | libc::MAP_ANONYMOUS,
            -1,
            0,
        )
    };
    if shared == libc::MAP_FAILED {
        return Err(SysError::last("mmap"));
    }
    let stop = shared as *const AtomicU32;
    // SAFETY: in-bounds pointer arithmetic inside the mapping.
    let counter = |i: usize| unsafe { &*(shared.cast::<u8>().add(16 + 8 * i) as *const AtomicU64) };

    let mut pids = Vec::with_capacity(flows);
    for i in 0..flows {
        // SAFETY: fork; the child only calls async-signal-safe functions
        // (sched_yield, atomic ops on shared memory, _exit).
        let pid = unsafe { libc::fork() };
        match pid {
            -1 => {
                // Couldn't create them all: stop the ones we have.
                // SAFETY: valid mapping; releasing children.
                unsafe { (*stop).store(1, Ordering::SeqCst) };
                reap(&pids);
                // SAFETY: unmapping our own mapping.
                unsafe { libc::munmap(shared, bytes) };
                return Err(SysError::last_with("fork", format!("at flow {i}")));
            }
            0 => {
                // Child: spin until told to stop.
                let c = counter(i);
                // SAFETY: shared mapping is inherited and valid.
                let stop_ref = unsafe { &*stop };
                while stop_ref.load(Ordering::Relaxed) == 0 {
                    flows_sys::os::sched_yield();
                    c.fetch_add(1, Ordering::Relaxed);
                }
                // SAFETY: terminating the child without running Rust
                // destructors that might touch parent state.
                unsafe { libc::_exit(0) };
            }
            child => pids.push(child),
        }
    }

    let t0 = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    // SAFETY: valid mapping.
    unsafe { (*stop).store(1, Ordering::SeqCst) };
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    reap(&pids);

    let mut total = 0u64;
    for i in 0..flows {
        total += counter(i).load(Ordering::SeqCst);
    }
    // SAFETY: unmapping our own mapping.
    unsafe { libc::munmap(shared, bytes) };
    Ok(YieldBench {
        flows,
        total_yields: total,
        elapsed_ns,
    })
}

fn reap(pids: &[libc::pid_t]) {
    for &pid in pids {
        let mut status = 0;
        // SAFETY: waiting on our own children.
        unsafe { libc::waitpid(pid, &mut status, 0) };
    }
}

/// Bounded probe of how many processes this user can actually create
/// (Table 2's "Process" row). Children block on a pipe read and exit when
/// the parent closes it; never more than `cap` are alive.
pub fn probe_processes(cap: usize) -> crate::limits::LimitReport {
    let cap = cap.clamp(1, MAX_PROCESS_FLOWS);
    let mut fds = [0i32; 2];
    // SAFETY: fresh pipe.
    if unsafe { libc::pipe(fds.as_mut_ptr()) } != 0 {
        return crate::limits::LimitReport::errored("process", cap, "pipe failed");
    }
    let (rd, wr) = (fds[0], fds[1]);
    let mut pids = Vec::new();
    let mut error = None;
    for _ in 0..cap {
        // SAFETY: child blocks on read then exits; async-signal-safe only.
        let pid = unsafe { libc::fork() };
        match pid {
            -1 => {
                error = Some(std::io::Error::last_os_error().to_string());
                break;
            }
            0 => {
                // SAFETY: child: close writer so read can return, block.
                unsafe {
                    libc::close(wr);
                    let mut b = 0u8;
                    libc::read(rd, (&mut b as *mut u8).cast(), 1);
                    libc::_exit(0);
                }
            }
            child => pids.push(child),
        }
    }
    let created = pids.len();
    // SAFETY: closing our pipe ends releases every child.
    unsafe {
        libc::close(wr);
        libc::close(rd);
    }
    reap(&pids);
    crate::limits::LimitReport {
        mechanism: "process",
        created,
        cap,
        hit_cap: created == cap,
        configured_limit: flows_sys::os::nproc_limit().ok().and_then(|l| l.soft),
        error,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_bounds_are_enforced() {
        assert!(yield_benchmark(0, 10).is_err());
        assert!(yield_benchmark(MAX_PROCESS_FLOWS + 1, 10).is_err());
    }

    #[test]
    fn small_process_storm_yields() {
        let b = yield_benchmark(2, 60).unwrap();
        assert_eq!(b.flows, 2);
        assert!(b.total_yields > 0, "children must have spun");
        assert!(b.elapsed_ns >= 50_000_000);
        assert!(b.ns_per_switch().is_finite());
    }

    #[test]
    fn probe_small_cap_hits_cap() {
        let r = probe_processes(8);
        assert_eq!(r.created, 8);
        assert!(r.hit_cap);
        assert!(r.error.is_none());
        assert!(r.summary().contains("8+"));
    }

    #[test]
    fn zero_yield_bench_reports_infinity() {
        let b = YieldBench {
            flows: 1,
            total_yields: 0,
            elapsed_ns: 1,
        };
        assert!(b.ns_per_switch().is_infinite());
    }
}
