//! # flows-mech — OS-level flow-of-control mechanisms
//!
//! The paper's §2 compares four mechanisms for multiple flows of control.
//! Two of them — processes (§2.1) and kernel threads (§2.2) — belong to
//! the operating system, not to our runtime; this crate wraps them behind
//! a small common interface so the §4.1 context-switch benchmark
//! (Figures 4–8) and the Table 2 limit probe can treat all four uniformly.
//!
//! * [`procs`] — `fork()`-based flows yielding with `sched_yield()`;
//! * [`kthreads`] — POSIX-thread (std::thread) flows yielding with
//!   `sched_yield()`;
//! * [`limits`] — bounded, non-destructive probing of "how many flows can
//!   this system actually create" (Table 2), with explicit caps so the
//!   probe can never take the host down.

#![warn(missing_docs)]

pub mod kthreads;
pub mod limits;
pub mod procs;

pub use limits::{probe_kernel_threads, probe_user_threads, LimitReport};
