//! Kernel-thread flows of control (paper §2.2), via `std::thread`
//! (pthreads on Linux).

use crate::procs::YieldBench;
use flows_sys::error::{SysError, SysResult};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Hard ceiling on kernel-thread flows the benchmark will create.
pub const MAX_KTHREAD_FLOWS: usize = 8192;

/// Run the kernel-thread yield benchmark: `flows` OS threads spin on
/// `sched_yield()` for `duration_ms`, counting yields.
pub fn yield_benchmark(flows: usize, duration_ms: u64) -> SysResult<YieldBench> {
    if flows == 0 || flows > MAX_KTHREAD_FLOWS {
        return Err(SysError::logic(
            "kthread_bench",
            format!("flows must be 1..={MAX_KTHREAD_FLOWS}"),
        ));
    }
    let stop = Arc::new(AtomicBool::new(false));
    let total = Arc::new(AtomicU64::new(0));
    let mut handles = Vec::with_capacity(flows);
    for i in 0..flows {
        let t_stop = stop.clone();
        let t_total = total.clone();
        let h = std::thread::Builder::new()
            .name(format!("flows-kt-{i}"))
            .stack_size(64 * 1024)
            .spawn(move || {
                let mut local = 0u64;
                while !t_stop.load(Ordering::Relaxed) {
                    flows_sys::os::sched_yield();
                    local += 1;
                }
                t_total.fetch_add(local, Ordering::Relaxed);
            });
        match h {
            Ok(h) => handles.push(h),
            Err(e) => {
                stop.store(true, Ordering::SeqCst);
                for h in handles {
                    let _ = h.join();
                }
                return Err(SysError::logic(
                    "kthread_spawn",
                    format!("at flow {i}: {e}"),
                ));
            }
        }
    }
    let t0 = std::time::Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(duration_ms));
    stop.store(true, Ordering::SeqCst);
    for h in handles {
        let _ = h.join();
    }
    let elapsed_ns = t0.elapsed().as_nanos() as u64;
    Ok(YieldBench {
        flows,
        total_yields: total.load(Ordering::SeqCst),
        elapsed_ns,
    })
}

/// Time `n` spawn-and-join cycles; returns nanoseconds per create+join.
/// (Table 2 discusses creation cost alongside the hard limits.)
pub fn creation_cost_ns(n: usize) -> SysResult<f64> {
    if n == 0 {
        return Err(SysError::logic("kthread_create", "n must be positive".into()));
    }
    let t0 = std::time::Instant::now();
    for _ in 0..n {
        std::thread::Builder::new()
            .stack_size(64 * 1024)
            .spawn(|| {})
            .map_err(|e| SysError::logic("kthread_spawn", e.to_string()))?
            .join()
            .map_err(|_| SysError::logic("kthread_join", "thread panicked".into()))?;
    }
    Ok(t0.elapsed().as_nanos() as f64 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounds_enforced() {
        assert!(yield_benchmark(0, 10).is_err());
        assert!(yield_benchmark(MAX_KTHREAD_FLOWS + 1, 10).is_err());
        assert!(creation_cost_ns(0).is_err());
    }

    #[test]
    fn small_thread_storm_yields() {
        let b = yield_benchmark(4, 60).unwrap();
        assert_eq!(b.flows, 4);
        assert!(b.total_yields > 0);
        assert!(b.ns_per_switch().is_finite());
    }

    #[test]
    fn creation_cost_is_positive() {
        let ns = creation_cost_ns(10).unwrap();
        assert!(ns > 0.0);
        // Creating a kernel thread costs at least a microsecond anywhere.
        assert!(ns > 1_000.0, "implausibly fast kernel thread creation: {ns}");
    }
}
