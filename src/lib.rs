//! # flows — migratable flows of control for parallel programs
//!
//! Umbrella crate re-exporting the public API of the `flows` workspace, a
//! reproduction of Zheng, Lawlor & Kalé, *"Multiple Flows of Control in
//! Migratable Parallel Programs"* (ICPP 2006).
//!
//! See the crate-level documentation of the member crates:
//! [`flows_core`] (migratable user-level threads), [`flows_converse`]
//! (PE runtime), [`flows_ampi`] (Adaptive-MPI-style interface),
//! [`flows_chare`] (event-driven objects + Structured Dagger),
//! [`flows_bigsim`] (machine simulator), [`flows_npb`] (NAS multi-zone
//! workloads), [`flows_lb`] (load balancing), [`flows_mem`] (isomalloc and
//! memory-aliasing), [`flows_pup`] (pack/unpack), [`flows_mech`]
//! (process/kernel-thread mechanisms), [`flows_arch`] and [`flows_sys`]
//! (machine/OS substrate).

pub use flows_ampi as ampi;
pub use flows_arch as arch;
pub use flows_bigsim as bigsim;
pub use flows_chare as chare;
pub use flows_comm as comm;
pub use flows_converse as converse;
pub use flows_core as core;
pub use flows_lb as lb;
pub use flows_mech as mech;
pub use flows_mem as mem;
pub use flows_npb as npb;
pub use flows_pup as pup;
pub use flows_sys as sys;
pub use flows_trace as trace;
