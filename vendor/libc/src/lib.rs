//! Minimal local stand-in for the `libc` crate: exactly the types,
//! constants and functions this workspace calls, declared against the C
//! library that `std` already links. Values are for x86_64/aarch64
//! Linux with glibc — the only platform this repo targets (see
//! DESIGN.md; the paper's experiments are Linux-only too).
//!
//! Vendored so the workspace builds with no registry access
//! (`cargo build --offline`); see README "Building offline".

#![allow(non_camel_case_types)]
#![allow(non_upper_case_globals)]

pub use std::ffi::c_void;
pub type c_char = i8;
pub type c_int = i32;
pub type c_uint = u32;
pub type c_long = i64;
pub type c_ulong = u64;
pub type size_t = usize;
pub type ssize_t = isize;
pub type off_t = i64;
pub type pid_t = i32;
pub type time_t = i64;
pub type clockid_t = i32;
pub type rlim_t = u64;
pub type __rlimit_resource_t = c_uint;

/// glibc's `sigset_t`: a 1024-bit mask (opaque here; only ever zeroed or
/// written by `pthread_sigmask`).
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    __val: [u64; 16],
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct timespec {
    pub tv_sec: time_t,
    pub tv_nsec: c_long,
}

#[repr(C)]
#[derive(Clone, Copy)]
pub struct rlimit {
    pub rlim_cur: rlim_t,
    pub rlim_max: rlim_t,
}

pub const CLOCK_MONOTONIC: clockid_t = 1;
pub const CLOCK_THREAD_CPUTIME_ID: clockid_t = 3;

pub const ENOMEM: c_int = 12;

pub const PROT_NONE: c_int = 0;
pub const PROT_READ: c_int = 1;
pub const PROT_WRITE: c_int = 2;

pub const MAP_SHARED: c_int = 0x0001;
pub const MAP_PRIVATE: c_int = 0x0002;
pub const MAP_FIXED: c_int = 0x0010;
pub const MAP_ANONYMOUS: c_int = 0x0020;
pub const MAP_NORESERVE: c_int = 0x4000;
pub const MAP_FIXED_NOREPLACE: c_int = 0x0010_0000;
pub const MAP_FAILED: *mut c_void = !0 as *mut c_void;

pub const MADV_DONTNEED: c_int = 4;
pub const MADV_HUGEPAGE: c_int = 14;

pub const MFD_CLOEXEC: c_uint = 0x0001;
pub const MFD_HUGETLB: c_uint = 0x0004;
/// `21 << MFD_HUGE_SHIFT` (26): request 2 MiB (2^21-byte) huge pages.
pub const MFD_HUGE_2MB: c_uint = 21 << 26;

pub const FALLOC_FL_KEEP_SIZE: c_int = 0x01;
pub const FALLOC_FL_PUNCH_HOLE: c_int = 0x02;

pub const RLIMIT_STACK: __rlimit_resource_t = 3;
pub const RLIMIT_NPROC: __rlimit_resource_t = 6;
pub const RLIMIT_AS: __rlimit_resource_t = 9;
pub const RLIM_INFINITY: rlim_t = !0;

pub const SIG_SETMASK: c_int = 2;

pub const _SC_PAGESIZE: c_int = 30;

/// `futex(2)` syscall number (no glibc wrapper exists; called via
/// `syscall`).
#[cfg(target_arch = "x86_64")]
pub const SYS_futex: c_long = 202;
#[cfg(target_arch = "aarch64")]
pub const SYS_futex: c_long = 98;

pub const FUTEX_WAIT: c_int = 0;
pub const FUTEX_WAKE: c_int = 1;
/// Process-private futex flag — deliberately NOT used by flows-net:
/// cross-process doorbells in shared memory need the shared (unflagged)
/// futex variant.
pub const FUTEX_PRIVATE_FLAG: c_int = 128;

pub const ETIMEDOUT: c_int = 110;
pub const EAGAIN: c_int = 11;
pub const EINTR: c_int = 4;

extern "C" {
    pub fn clock_gettime(clk_id: clockid_t, tp: *mut timespec) -> c_int;
    pub fn sysconf(name: c_int) -> c_long;
    pub fn sched_yield() -> c_int;

    pub fn mmap(
        addr: *mut c_void,
        len: size_t,
        prot: c_int,
        flags: c_int,
        fd: c_int,
        offset: off_t,
    ) -> *mut c_void;
    pub fn munmap(addr: *mut c_void, len: size_t) -> c_int;
    pub fn mprotect(addr: *mut c_void, len: size_t, prot: c_int) -> c_int;
    pub fn madvise(addr: *mut c_void, len: size_t, advice: c_int) -> c_int;

    pub fn memfd_create(name: *const c_char, flags: c_uint) -> c_int;
    pub fn ftruncate(fd: c_int, length: off_t) -> c_int;
    pub fn fallocate(fd: c_int, mode: c_int, offset: off_t, len: off_t) -> c_int;
    pub fn close(fd: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: size_t) -> ssize_t;
    pub fn pread(fd: c_int, buf: *mut c_void, count: size_t, offset: off_t) -> ssize_t;
    pub fn pwrite(fd: c_int, buf: *const c_void, count: size_t, offset: off_t) -> ssize_t;
    pub fn pipe(fds: *mut c_int) -> c_int;

    pub fn getrlimit(resource: __rlimit_resource_t, rlim: *mut rlimit) -> c_int;

    pub fn fork() -> pid_t;
    pub fn waitpid(pid: pid_t, status: *mut c_int, options: c_int) -> pid_t;
    pub fn _exit(status: c_int) -> !;

    pub fn pthread_sigmask(how: c_int, set: *const sigset_t, oldset: *mut sigset_t) -> c_int;

    pub fn syscall(num: c_long, ...) -> c_long;
}
