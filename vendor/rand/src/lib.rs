//! Minimal local stand-in for `rand`: the seedable-RNG subset this
//! workspace uses (`rngs::StdRng::seed_from_u64`, `seq::SliceRandom::
//! shuffle`, the `Rng` numeric helpers). The generator is splitmix64 —
//! statistically fine for test-case scrambling, NOT the real StdRng
//! stream, so seeds here don't reproduce upstream-rand sequences.
//! Vendored for offline builds.

/// Core of every generator: a 64-bit output stream.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Convenience sampling over an [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from `[low, high)` (panics on an empty range).
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * span,
        // irrelevant for test shuffling.
        range.start + ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// A uniformly random `bool`.
    fn gen_bool(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator (splitmix64 core).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers that consume randomness.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..(i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<u32> = (0..100).collect();
        let mut rng = StdRng::seed_from_u64(42);
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "seed 42 should actually permute");
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
        }
    }
}
