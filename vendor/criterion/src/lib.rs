//! Minimal local stand-in for `criterion`: enough API for this
//! workspace's `harness = false` benches to compile and produce wall-time
//! numbers. No statistics, plots or baselines — each benchmark runs for
//! roughly the configured measurement window and reports the mean
//! nanoseconds per iteration on stdout. Vendored for offline builds.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle; also the builder for its (few) knobs.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
        }
    }

    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let label = id.into_benchmark_id().label;
        self.run_one(&label, f);
    }

    fn run_one(&self, label: &str, mut f: impl FnMut(&mut Bencher)) {
        let mut b = Bencher {
            budget: self.measurement_time,
            warm_up: self.warm_up_time,
            samples: self.sample_size,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        if b.iters == 0 {
            println!("{label:<40} (no iterations recorded)");
            return;
        }
        let per_iter = b.total.as_nanos() as f64 / b.iters as f64;
        println!("{label:<40} time: {per_iter:>12.1} ns/iter ({} iters)", b.iters);
    }
}

/// Named sub-scope of benchmarks; labels are `group/name`.
pub struct BenchmarkGroup<'a> {
    c: &'a Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn bench_function(&mut self, id: impl IntoBenchmarkId, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().label);
        self.c.run_one(&label, f);
    }

    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.label);
        self.c.run_one(&label, |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// A benchmark's parameterised name.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            label: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { label: self }
    }
}

/// Passed to the measured closure; accumulates timing.
pub struct Bencher {
    budget: Duration,
    warm_up: Duration,
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Time `routine` repeatedly until the measurement window is spent.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up & calibration: find a batch size that takes ~budget/samples.
        let warm_end = Instant::now() + self.warm_up;
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let el = t0.elapsed();
            if el * (self.samples as u32) >= self.budget / 4 || Instant::now() >= warm_end {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        let deadline = Instant::now() + self.budget;
        while Instant::now() < deadline {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += t0.elapsed();
            self.iters += batch;
        }
        if self.iters == 0 {
            // Budget was tiny; record one batch so we always report.
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.total += t0.elapsed();
            self.iters += batch;
        }
    }

    /// The routine does its own timing over `iters` iterations.
    pub fn iter_custom(&mut self, mut routine: impl FnMut(u64) -> Duration) {
        // Calibrate a batch size against the per-sample budget.
        let mut batch = 1u64;
        let per_sample = self.budget / (self.samples as u32);
        loop {
            let el = routine(batch);
            self.total += el;
            self.iters += batch;
            if el >= per_sample || batch >= 1 << 20 {
                break;
            }
            batch = batch.saturating_mul(2);
        }
        for _ in 0..self.samples.min(8) {
            self.total += routine(batch);
            self.iters += batch;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_time() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(5))
            .warm_up_time(Duration::from_millis(1));
        let mut g = c.benchmark_group("shim");
        let mut count = 0u64;
        g.bench_function("noop", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &n| {
            b.iter_custom(|iters| {
                let t0 = Instant::now();
                for _ in 0..iters {
                    black_box(n + 1);
                }
                t0.elapsed()
            });
        });
        g.finish();
        assert!(count > 0);
    }
}
