//! Minimal local stand-in for `parking_lot`, backed by `std::sync`.
//! Same API shape for the subset this workspace uses: non-poisoning
//! `lock()` (a poisoned std mutex is recovered via `into_inner`, matching
//! parking_lot's no-poisoning semantics). Vendored for offline builds.

use std::sync::{self, TryLockError};

/// A mutex whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard of [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock (ignores poisoning, like parking_lot).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose methods never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Read guard of [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard of [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}
