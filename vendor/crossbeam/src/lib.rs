//! Minimal local stand-in for `crossbeam`: the `channel` module subset
//! this workspace uses (unbounded MPMC channel with cloneable sender,
//! `try_recv`, batched drain, `is_empty`) plus the `sync` module's
//! `Parker`/`Unparker` pair. Backed by a mutexed deque and a
//! mutex+condvar token — the machine's PEs poll with `try_recv` and park
//! when idle. Vendored for offline builds.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    struct Inner<T> {
        q: Mutex<VecDeque<T>>,
        /// Queue length mirrored outside the lock so emptiness probes
        /// (`is_empty`/`len`) are a single atomic load. Updated only while
        /// the lock is held; a probe that races a send may read the old
        /// length, which callers must treat as advisory (the machine's
        /// wakeup protocol unparks receivers *after* the send completes,
        /// so a stale "empty" is always followed by a wakeup).
        len: AtomicUsize,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half.
    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error of [`Sender::send`] (cannot occur here: the queue lives as
    /// long as any endpoint, matching how the machine uses channels).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            q: Mutex::new(VecDeque::new()),
            len: AtomicUsize::new(0),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut q = self.0.q.lock().unwrap_or_else(|e| e.into_inner());
            q.push_back(value);
            self.0.len.store(q.len(), Ordering::SeqCst);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue one message if available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.0.q.lock().unwrap_or_else(|e| e.into_inner());
            let v = q.pop_front().ok_or(TryRecvError::Empty);
            self.0.len.store(q.len(), Ordering::SeqCst);
            v
        }

        /// Dequeue up to `max` messages into `out` with a single lock
        /// acquisition, returning how many were moved. The machine's PE
        /// pump drains its packet channel in batches so the per-message
        /// cost is one `VecDeque` pop, not one mutex round trip.
        pub fn try_recv_batch(&self, out: &mut VecDeque<T>, max: usize) -> usize {
            let mut q = self.0.q.lock().unwrap_or_else(|e| e.into_inner());
            let n = max.min(q.len());
            if n == q.len() {
                // Common case: take the whole queue without popping.
                out.append(&mut q);
            } else {
                out.extend(q.drain(..n));
            }
            self.0.len.store(q.len(), Ordering::SeqCst);
            n
        }

        /// Whether the queue is currently empty (lock-free probe; see the
        /// note on `Inner::len`).
        pub fn is_empty(&self) -> bool {
            self.0.len.load(Ordering::SeqCst) == 0
        }

        /// Number of queued messages (lock-free probe).
        pub fn len(&self) -> usize {
            self.0.len.load(Ordering::SeqCst)
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert!(!rx.is_empty());
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }

        #[test]
        fn batch_drain() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            let mut out = VecDeque::new();
            assert_eq!(rx.try_recv_batch(&mut out, 3), 3);
            assert_eq!(out, [0, 1, 2]);
            assert_eq!(rx.try_recv_batch(&mut out, 100), 2);
            assert_eq!(out, [0, 1, 2, 3, 4]);
            assert_eq!(rx.try_recv_batch(&mut out, 100), 0);
        }
    }
}

pub mod sync {
    //! `Parker`/`Unparker`: a one-token thread parking primitive with the
    //! same semantics as crossbeam's. `unpark` before `park` makes the
    //! next `park` return immediately (the token is not cumulative), and
    //! `unpark` is cheap when nobody is parked (one atomic swap).

    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::Duration;

    const EMPTY: u32 = 0;
    const PARKED: u32 = 1;
    const NOTIFIED: u32 = 2;

    struct Inner {
        state: AtomicU32,
        lock: Mutex<()>,
        cvar: Condvar,
    }

    /// The parking half; owned by the thread that sleeps.
    pub struct Parker {
        inner: Arc<Inner>,
    }

    /// The waking half; cloneable and shareable across threads.
    #[derive(Clone)]
    pub struct Unparker {
        inner: Arc<Inner>,
    }

    impl std::fmt::Debug for Parker {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Parker { .. }")
        }
    }

    impl std::fmt::Debug for Unparker {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Unparker { .. }")
        }
    }

    impl Default for Parker {
        fn default() -> Self {
            Parker::new()
        }
    }

    impl Parker {
        /// A fresh parker with no token.
        pub fn new() -> Parker {
            Parker {
                inner: Arc::new(Inner {
                    state: AtomicU32::new(EMPTY),
                    lock: Mutex::new(()),
                    cvar: Condvar::new(),
                }),
            }
        }

        /// An [`Unparker`] that wakes this parker.
        pub fn unparker(&self) -> Unparker {
            Unparker {
                inner: self.inner.clone(),
            }
        }

        /// Block until unparked or `timeout` elapses (whichever first).
        /// Consumes a pending token immediately without sleeping. May
        /// also return spuriously — callers re-check their condition.
        pub fn park_timeout(&self, timeout: Duration) {
            let inner = &*self.inner;
            // Fast path: a token is already available.
            if inner
                .state
                .compare_exchange(NOTIFIED, EMPTY, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return;
            }
            let guard = inner.lock.lock().unwrap_or_else(|e| e.into_inner());
            // Publish "parked" under the lock; an unparker that swaps in
            // NOTIFIED now must take the lock to notify, so it cannot
            // miss us between this store and the wait below.
            if inner
                .state
                .compare_exchange(EMPTY, PARKED, Ordering::SeqCst, Ordering::SeqCst)
                .is_err()
            {
                // Token arrived between the fast path and the lock.
                inner.state.store(EMPTY, Ordering::SeqCst);
                return;
            }
            let _guard = inner
                .cvar
                .wait_timeout(guard, timeout)
                .unwrap_or_else(|e| e.into_inner());
            // Consume the token (or withdraw the PARKED state on timeout).
            inner.state.store(EMPTY, Ordering::SeqCst);
        }

        /// Block until unparked.
        pub fn park(&self) {
            self.park_timeout(Duration::from_secs(3600));
        }
    }

    impl Unparker {
        /// Deposit the token and wake the parker if it is sleeping.
        pub fn unpark(&self) {
            let inner = &*self.inner;
            if inner.state.swap(NOTIFIED, Ordering::SeqCst) == PARKED {
                // The parker set PARKED under the lock; taking it here
                // orders this notify after its wait registration.
                let _guard = inner.lock.lock().unwrap_or_else(|e| e.into_inner());
                inner.cvar.notify_one();
            }
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn token_before_park_returns_immediately() {
            let p = Parker::new();
            p.unparker().unpark();
            let t0 = std::time::Instant::now();
            p.park_timeout(Duration::from_secs(5));
            assert!(t0.elapsed() < Duration::from_secs(1));
        }

        #[test]
        fn unpark_wakes_sleeping_thread() {
            let p = Parker::new();
            let u = p.unparker();
            let h = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                u.unpark();
            });
            let t0 = std::time::Instant::now();
            p.park_timeout(Duration::from_secs(10));
            assert!(t0.elapsed() < Duration::from_secs(5));
            h.join().unwrap();
        }

        #[test]
        fn timeout_elapses_without_token() {
            let p = Parker::new();
            let t0 = std::time::Instant::now();
            p.park_timeout(Duration::from_millis(10));
            assert!(t0.elapsed() >= Duration::from_millis(5));
        }
    }
}
