//! Minimal local stand-in for `crossbeam`: the `channel` module subset
//! this workspace uses (unbounded MPMC channel with cloneable sender,
//! `try_recv`, `is_empty`). Backed by a mutexed deque — the machine's
//! PEs poll with `try_recv`, so no blocking receive is needed.
//! Vendored for offline builds.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Mutex};

    struct Inner<T> {
        q: Mutex<VecDeque<T>>,
    }

    /// Sending half; cloneable (multi-producer).
    pub struct Sender<T>(Arc<Inner<T>>);

    /// Receiving half.
    pub struct Receiver<T>(Arc<Inner<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    /// Error of [`Sender::send`] (cannot occur here: the queue lives as
    /// long as any endpoint, matching how the machine uses channels).
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error of [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// All senders dropped and the queue is drained.
        Disconnected,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let inner = Arc::new(Inner {
            q: Mutex::new(VecDeque::new()),
        });
        (Sender(inner.clone()), Receiver(inner))
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; never blocks.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0
                .q
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push_back(value);
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue one message if available.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0
                .q
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front()
                .ok_or(TryRecvError::Empty)
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.0.q.lock().unwrap_or_else(|e| e.into_inner()).is_empty()
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.0.q.lock().unwrap_or_else(|e| e.into_inner()).len()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_and_clone() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            tx.send(1).unwrap();
            tx2.send(2).unwrap();
            assert!(!rx.is_empty());
            assert_eq!(rx.try_recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        }
    }
}
