//! Minimal local stand-in for `proptest`: the subset of the API this
//! workspace's property tests use, with one deliberate behaviour change —
//! **no shrinking**. Cases are generated from a seed derived from the
//! test-function name, so every run of a given test replays the exact
//! same inputs; a failure therefore reproduces by simply re-running the
//! test, and the panic message carries the case index.
//!
//! Supported surface: `proptest! { #![proptest_config(..)] #[test] fn
//! name(pat in strategy, ..) { .. } }`, `prop_assert!/_eq!`,
//! `prop_assume!`, `prop_oneof!`, `any::<T>()`, numeric `Range`
//! strategies, `&str` patterns of the shape `.{a,b}`, tuples,
//! `collection::vec`, `Just`, `prop_map`, `prop_filter`, `boxed`.
//! Vendored for offline builds.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

pub mod test_runner {
    /// Why a single generated case did not pass.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// Assertion failure: the property is violated.
        Fail(String),
        /// The case was rejected (filter/assume); try another input.
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    /// Runner knobs. Only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Lower than upstream's 256: these tests run in CI on every
            // crate and determinism means more cases add little.
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic RNG handed to strategies (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Drive one property: generate-and-check `cfg.cases` inputs. Panics
    /// (failing the enclosing `#[test]`) on the first violated case.
    pub fn run_cases(
        name: &str,
        cfg: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut rng = TestRng::from_seed(fnv1a(name));
        let max_rejects = (cfg.cases as u64) * 16 + 256;
        let mut rejects = 0u64;
        let mut passed = 0u32;
        while passed < cfg.cases {
            match case(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest `{name}` failed at case {passed} \
                     (deterministic — re-run reproduces): {msg}"
                ),
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    if rejects > max_rejects {
                        panic!(
                            "proptest `{name}`: too many rejected cases \
                             ({rejects}); last reason: {why}"
                        );
                    }
                }
            }
        }
    }
}

pub mod strategy {
    use super::test_runner::TestRng;
    use super::*;

    /// A recipe for generating values. Unlike upstream there is no value
    /// tree / shrinking: `generate` returns the final value, or `None`
    /// when a filter rejected (the runner retries the whole case).
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Option<Self::Value>;

        fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            f: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter {
                inner: self,
                reason: reason.into(),
                f,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Type-erased strategy, used by `prop_oneof!`.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            self.0.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> Option<O> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    pub struct Filter<S, F> {
        inner: S,
        #[allow(dead_code)] // mirrors upstream's diagnostic-only reason
        reason: String,
        f: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // A few local retries before punting the rejection up to the
            // runner keeps filters with moderate reject rates cheap.
            for _ in 0..16 {
                if let Some(v) = self.inner.generate(rng) {
                    if (self.f)(&v) {
                        return Some(v);
                    }
                }
            }
            None
        }
    }

    /// Uniform choice between same-valued strategies (`prop_oneof!`).
    pub struct Union<T>(pub Vec<BoxedStrategy<T>>);

    impl<T: Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            assert!(!self.0.is_empty(), "prop_oneof! of zero strategies");
            let i = rng.below(self.0.len() as u64) as usize;
            self.0[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for Range<$ty> {
                type Value = $ty;
                fn generate(&self, rng: &mut TestRng) -> Option<$ty> {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    // Spans above 2^64 only arise for i128/u128 ranges,
                    // which this shim does not support.
                    let off = rng.below(span as u64) as i128;
                    Some((self.start as i128 + off) as $ty)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "empty range strategy");
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            Some(if v < self.end { v } else { self.start })
        }
    }

    /// `&str` as a strategy: the tiny regex subset the tests use —
    /// `.{a,b}` (a..=b arbitrary printable chars); any other pattern is
    /// produced literally.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> Option<String> {
            if let Some(rest) = self.strip_prefix('.') {
                if let Some(body) = rest.strip_prefix('{').and_then(|r| r.strip_suffix('}')) {
                    if let Some((lo, hi)) = body.split_once(',') {
                        if let (Ok(lo), Ok(hi)) = (lo.parse::<u64>(), hi.parse::<u64>()) {
                            let n = lo + rng.below(hi - lo + 1);
                            let s = (0..n)
                                .map(|_| char::from(b' ' + rng.below(95) as u8))
                                .collect();
                            return Some(s);
                        }
                    }
                }
            }
            Some((*self).to_string())
        }
    }

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    let ($($name,)+) = self;
                    Some(($($name.generate(rng)?,)+))
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod arbitrary {
    use super::test_runner::TestRng;
    use super::*;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Debug + Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($ty:ty),*) => {$(
            impl Arbitrary for $ty {
                fn arbitrary(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Raw bit patterns: exercises subnormals, infinities and NaN
            // like upstream's full-range f64 strategy.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl<T: Arbitrary> Arbitrary for Option<T> {
        fn arbitrary(rng: &mut TestRng) -> Option<T> {
            if rng.next_u64() & 3 == 0 {
                None
            } else {
                Some(T::arbitrary(rng))
            }
        }
    }

    /// Strategy returned by [`super::any`].
    pub struct AnyStrategy<T>(pub(super) PhantomData<T>);

    impl<T: Arbitrary> super::strategy::Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> Option<T> {
            Some(T::arbitrary(rng))
        }
    }
}

/// The canonical strategy for any value of `T`.
pub fn any<T: arbitrary::Arbitrary>() -> arbitrary::AnyStrategy<T> {
    arbitrary::AnyStrategy(PhantomData)
}

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A `Vec` whose length is drawn from `len` and whose elements come
    /// from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    pub use super::any;
    pub use super::arbitrary::Arbitrary;
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::test_runner::{ProptestConfig, TestCaseError};
    pub use super::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            #[allow(unused_variables, unused_mut)]
            $crate::test_runner::run_cases(stringify!($name), &$cfg, |__rng| {
                $(
                    let $pat = match $crate::strategy::Strategy::generate(&$strat, __rng) {
                        ::std::option::Option::Some(v) => v,
                        ::std::option::Option::None => {
                            return ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::reject("filtered out"),
                            )
                        }
                    };
                )*
                #[allow(unreachable_code)]
                let __out: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                __out
            });
        }
        $crate::__proptest_items! { config = $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} (`{:?}` vs `{:?}`)", format!($($fmt)+), l, r),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn runs_are_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = crate::collection::vec(0u64..100, 1..10);
        let a = s.generate(&mut TestRng::from_seed(9)).unwrap();
        let b = s.generate(&mut TestRng::from_seed(9)).unwrap();
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds, including negatives.
        #[test]
        fn ranges_in_bounds(x in -50i32..50, y in 3usize..9, f in 0.25f64..0.75) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((3..9).contains(&y));
            prop_assert!((0.25..0.75).contains(&f), "f64 out of range: {f}");
        }

        #[test]
        fn filters_and_maps_compose(
            v in crate::collection::vec(
                prop_oneof![
                    (1u32..5).prop_map(|n| n * 10),
                    (0u32..2).prop_map(|n| n + 100),
                ]
                .prop_filter("no 110", |n| *n != 110),
                0..20,
            ),
            s in ".{0,12}",
            o in any::<Option<u16>>(),
        ) {
            for n in &v {
                prop_assert!([10, 20, 30, 40, 100, 101].contains(n), "bad value {n}");
            }
            prop_assert!(s.len() <= 12);
            prop_assume!(o.is_some() || o.is_none());
        }

        #[test]
        fn just_yields_its_value(v in Just(7u8)) {
            prop_assert_eq!(v, 7, "Just must be constant");
        }
    }
}
