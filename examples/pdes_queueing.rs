//! Parallel discrete-event simulation (paper §1: "each simulation object
//! can be treated as a separate flow of control", ref [39] — POSE).
//!
//! A tandem queueing network simulated with event-driven objects: each
//! queue station is a chare; jobs are timestamped events routed through
//! the location-independent comm layer across 2 PEs. Conservative
//! synchronization: stations process events in timestamp order from a
//! local pending set, which is safe here because the network is
//! feed-forward (station i only feeds station i+1, and per-sender FIFO
//! delivery preserves timestamp order along each channel).
//!
//! ```text
//! cargo run --release --example pdes_queueing
//! ```

use flows::chare::{create, init_pe, register_chare_type, send_from_here, Chare, ChareLayer};
use flows::comm::{CommLayer, ObjId};
use flows::converse::{MachineBuilder, NetModel, Pe};
use flows::pup::{from_bytes, pup_fields, to_bytes};
use std::sync::{Mutex, OnceLock};

const STATIONS: usize = 4;
const JOBS: u64 = 200;
/// Entry point: a job arrives. Payload = pup'd Job.
const EP_ARRIVE: u32 = 0;

#[derive(Debug, Default, Clone, PartialEq)]
struct Job {
    id: u64,
    /// Virtual arrival time at the current station.
    time: u64,
}
pup_fields!(Job { id, time });

/// One queue station: serves jobs in arrival order with a deterministic
/// pseudo-random service time, forwarding to the next station.
struct Station {
    index: usize,
    /// When the server becomes free (virtual time).
    free_at: u64,
    served: u64,
    busy_time: u64,
}

static DONE: OnceLock<Mutex<Vec<(u64, u64)>>> = OnceLock::new();

fn service_time(station: usize, job: u64) -> u64 {
    // Deterministic "randomness": different stations have different rates.
    let h = (job * 2654435761).wrapping_add(station as u64 * 40503);
    10 + (h % (20 + 15 * station as u64))
}

impl Chare for Station {
    fn receive(&mut self, _pe: &Pe, ep: u32, data: Vec<u8>) {
        assert_eq!(ep, EP_ARRIVE);
        let mut job: Job = from_bytes(&data).expect("job wire");
        // Serve: start when both the job and the server are ready.
        let start = job.time.max(self.free_at);
        let svc = service_time(self.index, job.id);
        self.free_at = start + svc;
        self.busy_time += svc;
        self.served += 1;
        job.time = self.free_at;
        if self.index + 1 < STATIONS {
            send_from_here(ObjId((self.index + 1) as u64), EP_ARRIVE, to_bytes(&mut job));
        } else {
            DONE.get()
                .unwrap()
                .lock()
                .unwrap()
                .push((job.id, job.time));
        }
    }
}

fn station_factory(bytes: Vec<u8>) -> Box<dyn Chare> {
    Box::new(Station {
        index: bytes[0] as usize,
        free_at: 0,
        served: 0,
        busy_time: 0,
    })
}

fn main() {
    DONE.get_or_init(|| Mutex::new(Vec::new()));
    let mut mb = MachineBuilder::new(2).net_model(NetModel::zero());
    let _ = CommLayer::register(&mut mb);
    let _ = ChareLayer::register(&mut mb);
    let ty = register_chare_type(station_factory);

    mb.run_deterministic(move |pe| {
        init_pe(pe);
        // Stations striped across PEs: even on PE0, odd on PE1.
        for s in 0..STATIONS {
            if s % pe.num_pes() == pe.id() {
                create(pe, ObjId(s as u64), ty, station_factory(vec![s as u8]));
            }
        }
        if pe.id() == 0 {
            // Poisson-ish arrivals into station 0.
            let mut t = 0u64;
            for id in 0..JOBS {
                t += 5 + (id * 48271) % 30;
                let mut job = Job { id, time: t };
                send_from_here(ObjId(0), EP_ARRIVE, to_bytes(&mut job));
            }
        }
    });

    let done = DONE.get().unwrap().lock().unwrap();
    assert_eq!(done.len(), JOBS as usize, "every job must leave the network");
    let makespan = done.iter().map(|&(_, t)| t).max().unwrap();
    let mean_sojourn: f64 = {
        // Reconstruct each job's arrival time from the same generator.
        let mut t = 0u64;
        let mut total = 0u64;
        let arrivals: std::collections::HashMap<u64, u64> = (0..JOBS)
            .map(|id| {
                t += 5 + (id * 48271) % 30;
                (id, t)
            })
            .collect();
        for &(id, finish) in done.iter() {
            total += finish - arrivals[&id];
        }
        total as f64 / JOBS as f64
    };
    println!("tandem queue PDES: {STATIONS} stations on 2 PEs, {JOBS} jobs");
    println!("  virtual makespan : {makespan}");
    println!("  mean sojourn time: {mean_sojourn:.1}");
    println!(
        "\neach station is an event-driven object (§2.4); jobs are routed \
         by the location-independent layer, so stations could be migrated \
         mid-simulation exactly like any other chare."
    );
}
