//! The paper's Figure 1: a 1-D 5-point stencil with ghost-cell exchange,
//! written in Structured Dagger and run as chares on a 2-PE machine.
//!
//! Each strip chare's life cycle (exactly the paper's program):
//!
//! ```text
//! for (i = 0; i < MAX_ITER; i++) {
//!     atomic { sendStripToLeftAndRight(); }
//!     overlap {
//!         when getStripFromLeft(msg)  { atomic { copyStripFromLeft(msg); } }
//!         when getStripFromRight(msg) { atomic { copyStripFromRight(msg); } }
//!     }
//!     atomic { doWork(); }
//! }
//! ```
//!
//! ```text
//! cargo run --release --example stencil_sdag
//! ```

use flows::chare::{
    atomic, create, for_n, init_pe, overlap, register_chare_type, send_from_here, seq, when,
    Chare, ChareLayer, SdagRun,
};
use flows::comm::{CommLayer, ObjId};
use flows::converse::{MachineBuilder, NetModel, Pe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

const MAX_ITER: u64 = 5;
const STRIPS: usize = 4;
const WIDTH: usize = 16;
const EV_FROM_LEFT: u32 = 0;
const EV_FROM_RIGHT: u32 = 1;

struct StripState {
    id: usize,
    iter: u64,
    cells: Vec<f64>,
    ghost_left: f64,
    ghost_right: f64,
}

struct StripChare {
    run: SdagRun<StripState>,
}

type StripSums = Arc<Mutex<Vec<(usize, f64)>>>;

static DONE: OnceLock<Arc<AtomicU64>> = OnceLock::new();
static FINAL_SUMS: OnceLock<StripSums> = OnceLock::new();

fn obj(id: usize) -> ObjId {
    ObjId(id as u64)
}

fn send_strips(s: &StripState) {
    // sendStripToLeftAndRight(): periodic neighbours.
    let left = (s.id + STRIPS - 1) % STRIPS;
    let right = (s.id + 1) % STRIPS;
    // Our leftmost cell becomes the left neighbour's "from right" ghost.
    send_from_here(obj(left), EV_FROM_RIGHT, s.cells[0].to_le_bytes().to_vec());
    send_from_here(
        obj(right),
        EV_FROM_LEFT,
        s.cells[WIDTH - 1].to_le_bytes().to_vec(),
    );
}

fn program() -> flows::chare::Node<StripState> {
    for_n(
        |_s| MAX_ITER,
        seq(vec![
            atomic(|s: &mut StripState| send_strips(s)),
            overlap(vec![
                when(EV_FROM_LEFT, |s: &mut StripState, m: Vec<u8>| {
                    s.ghost_left = f64::from_le_bytes(m[..8].try_into().unwrap());
                }),
                when(EV_FROM_RIGHT, |s: &mut StripState, m: Vec<u8>| {
                    s.ghost_right = f64::from_le_bytes(m[..8].try_into().unwrap());
                }),
            ]),
            atomic(|s: &mut StripState| {
                // doWork(): 3-point relaxation over the strip interior.
                let mut next = s.cells.clone();
                #[allow(clippy::needless_range_loop)]
                for i in 0..WIDTH {
                    let l = if i == 0 { s.ghost_left } else { s.cells[i - 1] };
                    let r = if i == WIDTH - 1 {
                        s.ghost_right
                    } else {
                        s.cells[i + 1]
                    };
                    next[i] = 0.25 * l + 0.5 * s.cells[i] + 0.25 * r;
                }
                s.cells = next;
                s.iter += 1;
                if s.iter == MAX_ITER {
                    FINAL_SUMS
                        .get()
                        .unwrap()
                        .lock()
                        .unwrap()
                        .push((s.id, s.cells.iter().sum()));
                    DONE.get().unwrap().fetch_add(1, Ordering::Relaxed);
                }
            }),
        ]),
    )
}

impl Chare for StripChare {
    fn receive(&mut self, _pe: &Pe, ep: u32, data: Vec<u8>) {
        self.run.deliver(ep, data);
    }
}

fn make_strip(id: usize) -> Box<dyn Chare> {
    let cells = (0..WIDTH)
        .map(|i| ((id * WIDTH + i) % 7) as f64)
        .collect();
    Box::new(StripChare {
        run: SdagRun::new(
            &program(),
            StripState {
                id,
                iter: 0,
                cells,
                ghost_left: 0.0,
                ghost_right: 0.0,
            },
        ),
    })
}

fn factory(bytes: Vec<u8>) -> Box<dyn Chare> {
    // Strips are created fresh in this example (no migration mid-run).
    make_strip(bytes[0] as usize)
}

fn main() {
    DONE.get_or_init(|| Arc::new(AtomicU64::new(0)));
    FINAL_SUMS.get_or_init(|| Arc::new(Mutex::new(Vec::new())));

    let mut mb = MachineBuilder::new(2).net_model(NetModel::zero());
    let _ = CommLayer::register(&mut mb);
    let _ = ChareLayer::register(&mut mb);
    let ty = register_chare_type(factory);

    mb.run_deterministic(move |pe| {
        init_pe(pe);
        // Strips 0..2 on PE0, 2..4 on PE1.
        for id in 0..STRIPS {
            if id * pe.num_pes() / STRIPS == pe.id() {
                create(pe, obj(id), ty, make_strip(id));
            }
        }
    });

    assert_eq!(DONE.get().unwrap().load(Ordering::Relaxed), STRIPS as u64);
    let mut sums = FINAL_SUMS.get().unwrap().lock().unwrap().clone();
    sums.sort_by_key(|&(id, _)| id);
    println!("Figure 1 stencil: {STRIPS} strips x {MAX_ITER} iterations complete");
    for (id, sum) in sums {
        println!("  strip {id}: interior sum after relaxation = {sum:.4}");
    }
}
