//! AMPI with automatic load balancing (paper §4.5 in miniature): a BT-MZ
//! class-S run, first without load balancing, then with GreedyLB moving
//! rank threads at `migrate()` points. The checksum proves migration
//! changed nothing but the placement.
//!
//! ```text
//! cargo run --release --example ampi_loadbalance
//! ```

use flows::lb::GreedyLb;
use flows::npb::{run, MzBench, MzClass, MzConfig};
use std::sync::Arc;

fn main() {
    let mut cfg = MzConfig::new(MzBench::BtMz, MzClass::W, 8, 2);
    cfg.iterations = 6;
    cfg.sweeps = 4;

    println!("BT-MZ {} — uneven zones on purpose (≈20x area spread)\n", cfg.label());

    let without = run(&cfg);
    println!("without LB:");
    println!("  modeled parallel time : {:.4} s", without.modeled_time_s);
    println!("  per-PE busy times     : {:?}", round3(&without.pe_busy_s));
    println!("  checksum              : {:.9}", without.checksum);

    let with = run(&cfg.clone().with_lb(Arc::new(GreedyLb)));
    println!("\nwith GreedyLB (thread migration at migrate() points):");
    println!("  modeled parallel time : {:.4} s", with.modeled_time_s);
    println!("  per-PE busy times     : {:?}", round3(&with.pe_busy_s));
    println!("  rank migrations       : {}", with.migrations);
    println!("  checksum              : {:.9}", with.checksum);

    assert_eq!(
        without.checksum, with.checksum,
        "migration must not change the numerics"
    );
    println!(
        "\nspeedup from load balancing: {:.2}x (checksums identical)",
        without.modeled_time_s / with.modeled_time_s.max(1e-12)
    );
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
