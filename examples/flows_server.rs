//! The paper's fifth motivating domain (§1): "web and other network
//! servers, where communication with each client can be handled by a
//! separate flow of control."
//!
//! A simulated server: each client session is one user-level thread that
//! parses requests, "performs I/O" (suspends until the response payload
//! is ready), and streams a response — thousands of concurrent sessions
//! on one PE, far past where per-client processes or kernel threads stop
//! scaling (Table 2).
//!
//! ```text
//! cargo run --release --example flows_server
//! ```

use flows::core::{suspend, yield_now, SchedConfig, Scheduler, SharedPools, StackFlavor};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

const SESSIONS: usize = 5_000;
const REQUESTS_PER_SESSION: usize = 3;

/// The "disk": completed I/O operations wake their waiting session.
#[derive(Default)]
struct IoReactor {
    pending: VecDeque<(flows::core::ThreadId, u64)>,
    completed: RefCell<Vec<(flows::core::ThreadId, u64)>>,
}

fn main() {
    let pools = SharedPools::new_for_tests();
    let server = Scheduler::new(0, pools, SchedConfig::default());
    let reactor = Rc::new(RefCell::new(IoReactor::default()));
    let bytes_served = Rc::new(RefCell::new(0u64));

    for session in 0..SESSIONS {
        let reactor = reactor.clone();
        let bytes_served = bytes_served.clone();
        server
            .spawn_with(StackFlavor::Standard, 16 * 1024, move || {
                let me = flows::core::current().expect("session thread");
                for req in 0..REQUESTS_PER_SESSION {
                    // "Parse" a request.
                    let key = (session * 31 + req * 7) as u64;
                    // Issue async I/O and block this session only.
                    reactor.borrow_mut().pending.push_back((me, key));
                    suspend();
                    // I/O done: find our payload.
                    let payload = {
                        let mut done = reactor.borrow().completed.borrow_mut().clone();
                        let idx = done
                            .iter()
                            .position(|(t, _)| *t == me)
                            .expect("completion for us");
                        let (_, v) = done.swap_remove(idx);
                        *reactor.borrow().completed.borrow_mut() = done;
                        v
                    };
                    // "Stream" the response.
                    *bytes_served.borrow_mut() += payload % 1500 + 64;
                    yield_now();
                }
            })
            .expect("spawn session");
    }

    // The event loop: interleave session execution with I/O completion.
    let t0 = std::time::Instant::now();
    let mut completions = 0u64;
    loop {
        // Run a burst of ready sessions.
        for _ in 0..256 {
            if !server.step() {
                break;
            }
        }
        // "Complete" up to 512 pending I/Os and wake their sessions.
        let ready: Vec<_> = {
            let mut r = reactor.borrow_mut();
            let n = r.pending.len().min(512);
            r.pending.drain(..n).collect()
        };
        if ready.is_empty() && server.runnable() == 0 {
            break;
        }
        for (tid, key) in ready {
            completions += 1;
            reactor
                .borrow()
                .completed
                .borrow_mut()
                .push((tid, key.wrapping_mul(2654435761)));
            server.awaken_tid(tid).expect("wake session");
        }
    }
    let dt = t0.elapsed();

    assert_eq!(
        completions as usize,
        SESSIONS * REQUESTS_PER_SESSION,
        "every request performed I/O exactly once"
    );
    assert_eq!(server.thread_count(), 0, "every session completed");
    println!(
        "served {} sessions x {} requests ({} async I/Os, {} bytes) in {:.2?}",
        SESSIONS,
        REQUESTS_PER_SESSION,
        completions,
        bytes_served.borrow(),
        dt
    );
    println!(
        "context switches: {} (~{:.2} µs per request round-trip)",
        server.stats().switches,
        dt.as_micros() as f64 / completions as f64
    );
    println!(
        "\n{} concurrent flows on one PE — the regime where Table 2 caps \
         per-client processes and kernel threads.",
        SESSIONS
    );
}
