//! Quickstart: user-level threads in four stack flavors, and a live
//! migration of a suspended thread between two PEs.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use flows::core::{
    migrate::migrate, suspend, yield_now, SchedConfig, Scheduler, SharedPools, StackFlavor,
};
use std::cell::Cell;
use std::rc::Rc;

fn main() {
    // One set of machine-wide memory pools (isomalloc region, common
    // stack regions), shared by every PE in this process.
    let pools = SharedPools::new_for_tests();

    // --- 1. Many cooperating flows on one PE -----------------------------
    let pe0 = Scheduler::new(0, pools.clone(), SchedConfig::default());
    let counter = Rc::new(Cell::new(0u64));
    for flavor in StackFlavor::ALL {
        let counter = counter.clone();
        pe0.spawn(flavor, move || {
            for _ in 0..3 {
                counter.set(counter.get() + 1);
                yield_now(); // cooperative: let the other flavors run
            }
            println!("  a {:12} thread finished", flows::core::current().unwrap());
        })
        .unwrap();
    }
    pe0.run();
    println!(
        "four flavors interleaved to {} increments; switches = {}",
        counter.get(),
        pe0.stats().switches
    );

    // --- 2. Migrate a computation mid-flight ------------------------------
    let pe1 = Scheduler::new(1, pools, SchedConfig::default());
    let result = Rc::new(Cell::new(0u64));
    let r2 = result.clone();
    let tid = pe0
        .spawn(StackFlavor::Isomalloc, move || {
            let mut acc: u64 = (1..=1000).sum(); // phase 1 on PE 0
            suspend(); // ---- migration happens here ----
            acc += (1001..=2000).sum::<u64>(); // phase 2 on PE 1
            r2.set(acc);
        })
        .unwrap();
    pe0.run(); // phase 1 runs, thread suspends
    println!("thread {tid} suspended on PE0 — packing and shipping to PE1");
    migrate(&pe0, &pe1, tid).unwrap();
    pe1.awaken_tid(tid).unwrap();
    pe1.run();
    println!(
        "thread resumed on PE1 with its stack intact: sum(1..=2000) = {}",
        result.get()
    );
    assert_eq!(result.get(), 2001000);
}
