//! A small BigSim run (paper §4.4): simulate a 2 000-processor target
//! machine running an MD-like timestep loop, using 2 000 user-level
//! threads over 2 simulating PEs — the kind of thread count Table 2 shows
//! is out of reach for processes or kernel threads.
//!
//! ```text
//! cargo run --release --example bigsim_md
//! ```

use flows::bigsim::{run, BigSimConfig};

fn main() {
    let cfg = BigSimConfig {
        target_procs: 2_000,
        sim_pes: 2,
        steps: 4,
        particles_per_proc: 16,
        stack_bytes: 16 * 1024,
        threaded: false,
        target: Default::default(),
        faults: None,
        tracing: false,
    };
    println!(
        "simulating a {}-processor target machine with {} user-level threads on {} PEs...",
        cfg.target_procs, cfg.target_procs, cfg.sim_pes
    );
    let r = run(&cfg);
    println!("steps simulated        : {}", r.steps);
    println!("context switches       : {}", r.switches);
    println!(
        "modeled time per step  : {:.3} ms",
        r.modeled_step_ns as f64 * 1e-6
    );
    for (i, ns) in r.per_step_wall_ns.iter().enumerate() {
        println!("  host wall, step {i}    : {:.3} ms", *ns as f64 * 1e-6);
    }
    println!("state checksum         : {:#x}", r.checksum);
    println!(
        "\n(the Figure 11 harness sweeps simulating PEs 4..64 with 20k/200k \
         threads: cargo run --release -p flows-bench --bin fig11_bigsim)"
    );
}
