#!/bin/bash
# Full benchmark sweep: regenerate the checked-in BENCH_*.json artifacts
# at full windows, then run the bench_smoke floor gate so a regression
# is caught in the same invocation that records the numbers.
#
#   scripts/run_benches.sh [--quick] [--flavors a,b,c] [--reps N]
#
# `--quick` skips the full-window regeneration entirely and runs only
# the floor gates (bench_smoke's fast windows, best-of-3) — the mode CI
# and pre-commit hooks want: minutes of sweep collapse to seconds, and
# nothing under version control is rewritten.
# `--flavors` restricts the sched_migrate sweep to the named stack
# flavors (default: all four — standard, stack-copy, isomalloc,
# memory-alias); `--reps` sets its best-of-N pass count (default 3;
# raise it on noisy shared hosts). Both pass straight through to the
# sched_migrate binary. When the sweep is restricted, the partial
# results go to a scratch file instead of overwriting BENCH_sched.json.
set -eu
cd "$(dirname "$0")/.."

# Safety gate first: numbers recorded from a workspace that fails the
# migration-safety/concurrency-protocol lint are not worth keeping.
cargo run --offline -q -p flows-check --bin flowslint -- --root . \
  --baseline flowslint.baseline

FLAVORS=""
REPS=""
QUICK=0
while [ $# -gt 0 ]; do
  case "$1" in
    --quick)   QUICK=1;      shift ;;
    --flavors) FLAVORS="$2"; shift 2 ;;
    --reps)    REPS="$2";    shift 2 ;;
    *) echo "usage: $0 [--quick] [--flavors a,b,c] [--reps N]" >&2; exit 2 ;;
  esac
done

if [ "$QUICK" -eq 1 ]; then
  echo "run_benches: quick mode (floors only, no artifact regeneration)"
  exec scripts/bench_smoke.sh
fi

SCHED_ARGS=""
SCHED_JSON=BENCH_sched.json
if [ -n "$FLAVORS" ]; then
  SCHED_ARGS="--flavors $FLAVORS"
  SCHED_JSON=/tmp/BENCH_sched_partial.json
  echo "run_benches: partial flavor sweep ($FLAVORS) -> $SCHED_JSON"
fi
if [ -n "$REPS" ]; then
  SCHED_ARGS="$SCHED_ARGS --reps $REPS"
fi

cargo build --offline --release -q -p flows-bench

# shellcheck disable=SC2086 — SCHED_ARGS is a deliberate word list.
./target/release/sched_migrate --steal $SCHED_ARGS --json "$SCHED_JSON"
./target/release/msgpath --json BENCH_msgpath.json --processes 2

# Million-thread scale-out probe at full cap (the smoke gate re-runs it
# with the same cap and enforces the floors).
./target/release/table2_limits --iso-cap 1000000

scripts/bench_smoke.sh --mp

# Multi-process smoke: a 2-proc x 2-PE machine must heal a whole-process
# crash from buddy checkpoints over the socket backend (the same gate
# chaos.sh provides for single-process fault schedules).
cargo test --offline --release -q -p flows-ampi --test mp_recovery -- --test-threads 1

scripts/chaos.sh
