#!/bin/bash
# Chaos soak gate: runs the online-recovery soak (ft_online) across a
# dozen seeded crash/stall/loss schedules and asserts every one heals in
# place — zero restarts, no stranded threads, only scripted victims (or
# fenced stallers) dead, and per-rank checksums bit-identical to the
# fault-free run. The harness itself exits non-zero on any violation;
# this wrapper re-checks the verdict column and the seed count so a
# silently-truncated table cannot pass. Writes BENCH_ft.json (detection
# latency + MTTR per seed) as a side effect.
set -u
cd "$(dirname "$0")/.."

SEEDS=${SEEDS:-12}
if [ "$SEEDS" -lt 10 ]; then
  echo "FAIL: chaos soak needs at least 10 seeds (got $SEEDS)" >&2
  exit 1
fi
OUT=$(timeout 900 cargo run --offline --release -q -p flows-bench --bin ft_online -- --seeds "$SEEDS" 2>&1)
STATUS=$?
echo "$OUT"
if [ $STATUS -ne 0 ]; then
  echo "FAIL: ft_online exited $STATUS (divergence, failed heal, or build error)" >&2
  exit 1
fi
if echo "$OUT" | grep -q "false"; then
  echo "FAIL: a 'checksum equal' column reads false" >&2
  exit 1
fi
ROWS=$(echo "$OUT" | grep -c "^0x\|^ *0x")
if [ "$ROWS" -lt "$SEEDS" ]; then
  echo "FAIL: expected $SEEDS seed rows, saw $ROWS" >&2
  exit 1
fi
if [ ! -s BENCH_ft.json ]; then
  echo "FAIL: BENCH_ft.json was not written" >&2
  exit 1
fi
echo "OK: $SEEDS chaos schedules healed online with bit-identical checksums"
