#!/bin/bash
# Perf smoke gate: run the msgpath and sched_migrate microbenches in
# their fast configurations and fail if headline throughput regresses
# below a recorded floor.
#
# Floors are deterministic-mode numbers only (threaded-mode wall time is
# scheduler noise on small hosts) and sit ~2x under what this host
# measures post-fast-path, but above the pre-fast-path baselines — so a
# regression back to per-message copies, per-switch CPU-clock syscalls,
# or per-thread mmaps trips the gate while ordinary host jitter does not.
#
# These benches build with the tracing subsystem compiled in (flows-trace
# is a default dependency of core/converse) but the runtime gate off, so
# the same floors double as the tracing-disabled-overhead-is-noise check:
# if the per-switch/per-message trace hooks ever cost more than their
# intended gated TLS-null-check, ctx_switch and pingpong trip first.
set -eu
cd "$(dirname "$0")/.."

# --mp adds the multi-process leg: msgpath's 2-proc x 2-PE scenarios over
# the flows-net backends, with a floor on the shared-memory ring. Off by
# default so `run_benches.sh --quick` stays single-process.
MP=0
for a in "$@"; do
  case "$a" in
    --mp) MP=1 ;;
    *) echo "usage: $0 [--mp]" >&2; exit 2 ;;
  esac
done

JSON=$(mktemp /tmp/bench_smoke.XXXXXX.json)
SJSON=$(mktemp /tmp/bench_smoke_sched.XXXXXX.json)
trap 'rm -f "$JSON" "$SJSON"' EXIT

MPARGS=""
if [ "$MP" -eq 1 ]; then
  MPARGS="--processes 2"
fi
# shellcheck disable=SC2086 — MPARGS is a deliberate word list.
cargo run --offline --release -q -p flows-bench --bin msgpath -- --fast $MPARGS --json "$JSON"

# rate <scenario> <mode> <payload_bytes> <reliable> -> msgs_per_sec
rate() {
  grep "\"scenario\": \"$1\", \"mode\": \"$2\"," "$JSON" \
    | grep "\"payload_bytes\": $3, \"reliable_link\": $4," \
    | sed -n 's/.*"msgs_per_sec": \([0-9.]*\).*/\1/p' | head -1
}

fail=0
check() { # <label> <observed> <floor>
  if [ -z "$2" ]; then
    echo "FAIL  $1: no result in $JSON"
    fail=1
  elif awk -v o="$2" -v f="$3" 'BEGIN { exit !(o >= f) }'; then
    echo "ok    $1: $2 msgs/sec (floor $3)"
  else
    echo "FAIL  $1: $2 msgs/sec below floor $3"
    fail=1
  fi
}

check "pingpong det 16K reliable" "$(rate pingpong det 16384 true)" 900000
check "ring det 16K reliable"     "$(rate ring det 16384 true)"     900000
check "pingpong det 8B raw"       "$(rate pingpong det 8 false)"    2500000
check "fanin det 64B raw"         "$(rate fanin det 64 false)"    3000000

# mprate <scenario> <backend> -> msgs_per_sec of the 2-process rows
mprate() {
  grep "\"scenario\": \"$1\", \"mode\": \"threaded\", \"processes\": 2, \"backend\": \"$2\"," "$JSON" \
    | sed -n 's/.*"msgs_per_sec": \([0-9.]*\).*/\1/p' | head -1
}

if [ "$MP" -eq 1 ]; then
  # Cross-process hops measure ~40K/sec on this 1-core host; the floor
  # sits far below jitter but far above the ~13/sec a quiescence-probe
  # wedge (or a park-timeout-per-hop regression) collapses to.
  check "mp ring shm 2proc" "$(mprate ring shm)" 10000
fi

cargo run --offline --release -q -p flows-bench --bin sched_migrate -- --fast --steal --reps 3 --json "$SJSON"

# srate <scenario> <flavor> -> ops_per_sec
srate() {
  grep "\"scenario\": \"$1\", \"flavor\": \"$2\"," "$SJSON" \
    | sed -n 's/.*"ops_per_sec": \([0-9.]*\).*/\1/p' | head -1
}

check "ctx_switch standard"     "$(srate ctx_switch standard)"     3000000
check "ctx_switch isomalloc"    "$(srate ctx_switch isomalloc)"    3000000
# Windowed-alias fast paths: a regression back to remap-per-switch
# measures ~200K here, to teardown-per-exit ~110K/~240K — the floors sit
# ~3x under what this host measures post-fast-path, ~10x above those.
check "ctx_switch memory-alias" "$(srate ctx_switch memory-alias)" 2000000
check "churn memory-alias"      "$(srate churn memory-alias)"      500000
check "churn isomalloc"         "$(srate churn isomalloc)"         500000
check "migrate stack-copy"      "$(srate migrate stack-copy)"      500000
check "migrate isomalloc"       "$(srate migrate isomalloc)"       70000
check "migrate memory-alias"    "$(srate migrate memory-alias)"    100000

# Work-stealing shootout (modeled-parallel makespan; burst steps are
# charged at a min-calibrated slice cost, so these figures are stable on
# loaded hosts). The skewed spawn must clear >= 2x faster with stealing
# on than with no balancing at all — the headline claim of the steal
# path — plus an absolute floor ~3x under what this host measures.
SPEEDUP=$(sed -n 's/.*"steal_speedup": \([0-9.]*\).*/\1/p' "$SJSON" | head -1)
if [ -z "$SPEEDUP" ]; then
  echo "FAIL  steal_speedup: missing from $SJSON"
  fail=1
elif awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 2.0) }'; then
  echo "ok    steal_speedup: ${SPEEDUP}x (gate 2.0x)"
else
  echo "FAIL  steal_speedup: ${SPEEDUP}x below 2.0x gate"
  fail=1
fi
check "steal_skew isomalloc"    "$(srate steal_skew isomalloc)"    400000

# Million-thread scale-out: one PE must hold >= 1M live migratable
# threads (lazy slabs), at a bounded holding cost per thread. The 4 KiB
# ceiling is generous — ~20x the measured Tcb+bookkeeping cost — so it
# trips on an O(threads) memory regression, not allocator jitter.
ISO_OUT=$(cargo run --offline --release -q -p flows-bench --bin table2_limits -- \
  --proc-cap 16 --kthread-cap 16 --uthread-cap 16 --iso-cap 1000000)
ISO_LIVE=$(printf '%s\n' "$ISO_OUT" | sed -n 's/^iso_live_threads: \([0-9]*\)$/\1/p')
ISO_BPT=$(printf '%s\n' "$ISO_OUT" | sed -n 's/^iso_bytes_per_thread: \([0-9]*\)$/\1/p')
if [ -z "$ISO_LIVE" ] || [ "$ISO_LIVE" -lt 1000000 ]; then
  echo "FAIL  iso_live_threads: ${ISO_LIVE:-missing} below 1000000"
  fail=1
else
  echo "ok    iso_live_threads: $ISO_LIVE (gate 1000000)"
fi
if [ -z "$ISO_BPT" ] || [ "$ISO_BPT" -gt 4096 ]; then
  echo "FAIL  iso_bytes_per_thread: ${ISO_BPT:-missing} above 4096 ceiling"
  fail=1
else
  echo "ok    iso_bytes_per_thread: $ISO_BPT (ceiling 4096)"
fi

if [ "$fail" -ne 0 ]; then
  echo "bench_smoke: FAIL (throughput regressed below recorded floor)"
  exit 1
fi
echo "bench_smoke: PASS"
