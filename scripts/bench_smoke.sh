#!/bin/bash
# Perf smoke gate: run the msgpath microbench in its fast configuration
# and fail if headline throughput regresses below a recorded floor.
#
# Floors are deterministic-mode numbers only (threaded-mode wall time is
# scheduler noise on small hosts) and sit ~2x under what this host
# measures post-zero-copy, but above the pre-zero-copy baselines — so a
# regression back to per-message copies/counters trips the gate while
# ordinary host jitter does not.
set -eu
cd "$(dirname "$0")/.."

JSON=$(mktemp /tmp/bench_smoke.XXXXXX.json)
trap 'rm -f "$JSON"' EXIT

cargo run --offline --release -q -p flows-bench --bin msgpath -- --fast --json "$JSON"

# rate <scenario> <mode> <payload_bytes> <reliable> -> msgs_per_sec
rate() {
  grep "\"scenario\": \"$1\", \"mode\": \"$2\"," "$JSON" \
    | grep "\"payload_bytes\": $3, \"reliable_link\": $4," \
    | sed -n 's/.*"msgs_per_sec": \([0-9.]*\).*/\1/p' | head -1
}

fail=0
check() { # <label> <observed> <floor>
  if [ -z "$2" ]; then
    echo "FAIL  $1: no result in $JSON"
    fail=1
  elif awk -v o="$2" -v f="$3" 'BEGIN { exit !(o >= f) }'; then
    echo "ok    $1: $2 msgs/sec (floor $3)"
  else
    echo "FAIL  $1: $2 msgs/sec below floor $3"
    fail=1
  fi
}

check "pingpong det 16K reliable" "$(rate pingpong det 16384 true)" 900000
check "ring det 16K reliable"     "$(rate ring det 16384 true)"     900000
check "pingpong det 8B raw"       "$(rate pingpong det 8 false)"    2500000

if [ "$fail" -ne 0 ]; then
  echo "bench_smoke: FAIL (throughput regressed below recorded floor)"
  exit 1
fi
echo "bench_smoke: PASS"
