#!/bin/bash
# Safety gate: the migration-safety lint plus the runtime-sanitizer test
# pass.
#
#  1. flowslint — the dependency-free static analysis in crates/check:
#     SAFETY-comment coverage on `unsafe`, no hidden global state in
#     migratable crates, raw-pointer fields in Pup types flagged, libc
#     confined to flows-sys. The workspace must stay finding-free.
#  2. `--features sanitize` test pass — rebuilds the substrate with the
#     runtime detectors armed (stack canaries, heap red zones + freed
#     quarantine, vacated-slot poisoning, scheduler lifecycle trips,
#     pup-size validation) and proves both that the regular suites still
#     pass with detectors on and that every detector still fires.
set -eu
cd "$(dirname "$0")/.."

cargo run --offline -q -p flows-check --bin flowslint -- --root .
cargo test --offline -q -p flows-mem -p flows-core -p flows-ampi --features sanitize
echo "OK: flowslint clean + sanitize test pass green"
