#!/bin/bash
# Safety gate: the migration-safety lint plus the runtime-sanitizer test
# pass.
#
#  1. flowslint — the dependency-free static analysis in crates/check,
#     seven rules over a per-crate symbol graph: SAFETY-comment coverage
#     on `unsafe`, no hidden global state in migratable crates,
#     raw-pointer fields in Pup types flagged, libc confined to
#     flows-sys, process-local state reachable from a migration-image
#     root (migration-image-closure), annotated atomic publish/consume
#     ordering + pairing (atomic-protocol), and wire-message
#     exhaustiveness in annotated pump handlers (wire-exhaustive).
#     The workspace must stay free of unwaived findings; accepted ones
#     live in flowslint.baseline, and every run writes the SARIF
#     artifact to target/flowslint.sarif for upload/inspection.
#  2. flowslint's own test suite — tokenizer/parser units, rule
#     fixtures, interleaver models, report/baseline round-trips.
#  3. `--features sanitize` test pass — rebuilds the substrate with the
#     runtime detectors armed (stack canaries, heap red zones + freed
#     quarantine, vacated-slot poisoning, scheduler lifecycle trips,
#     pup-size validation) and proves both that the regular suites still
#     pass with detectors on and that every detector still fires.
set -eu
cd "$(dirname "$0")/.."

mkdir -p target
cargo run --offline -q -p flows-check --bin flowslint -- --root . \
  --baseline flowslint.baseline --sarif-out target/flowslint.sarif
cargo test --offline -q -p flows-check
cargo test --offline -q -p flows-mem -p flows-core -p flows-ampi --features sanitize
echo "OK: flowslint clean (SARIF at target/flowslint.sarif) + check suite + sanitize pass green"
