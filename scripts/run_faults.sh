#!/bin/bash
# Fault-injection smoke test: runs the fault_recovery harness at a fixed
# seed and asserts (a) the harness's own checksum gate passes (it exits
# non-zero if any faulty run diverges from the fault-free checksum), and
# (b) the crash scenario actually restarted and degraded the machine.
set -u
cd "$(dirname "$0")/.."

SEED=fa17
OUT=$(timeout 900 cargo run --offline --release -q -p flows-bench --bin fault_recovery -- --seed "$SEED" 2>&1)
STATUS=$?
echo "$OUT"
if [ $STATUS -ne 0 ]; then
  echo "FAIL: fault_recovery harness exited $STATUS (checksum divergence or build error)" >&2
  exit 1
fi
if echo "$OUT" | grep -q "false"; then
  echo "FAIL: a 'checksum equal' column reads false" >&2
  exit 1
fi
# The crash row: 1 restart, 3 PEs left, checksum equal.
if ! echo "$OUT" | grep -A2 "crash PE1" | grep -qE "\b1\s+3\s+[0-9]+\s+true"; then
  echo "FAIL: crash scenario did not report '1 restart, 3 PEs, checksum equal'" >&2
  exit 1
fi
echo "OK: seeded fault sweep + crash recovery reproduce the fault-free checksums"
