#!/bin/bash
# Tracing smoke test: run a small traced AMPI job (4 PEs, 8 ranks,
# RotateLB migrations, one checkpoint, lossy transport), export the
# Chrome-trace JSON, and sanity-check that every event family the
# tracing subsystem promises actually landed in the file.
set -eu
cd "$(dirname "$0")/.."

OUT=$(mktemp /tmp/trace_demo.XXXXXX.json)
trap 'rm -f "$OUT"' EXIT

timeout 600 cargo run --offline --release -q -p flows-bench --bin trace_export -- \
  --ranks 8 --pes 4 --iters 4 --out "$OUT"

fail=0
for kind in thread_create thread_exit msg_send msg_recv mig_pack mig_unpack \
            checkpoint lb_epoch fault_drop fault_retransmit process_name; do
  if grep -q "\"$kind\"" "$OUT"; then
    echo "ok    event family: $kind"
  else
    echo "FAIL  missing event family: $kind"
    fail=1
  fi
done
# Context-switch slices are "X" complete events with a flavor arg.
if grep -q '"ph":"X"' "$OUT" && grep -q '"flavor":"isomalloc"' "$OUT"; then
  echo "ok    context-switch slices with stack flavor"
else
  echo "FAIL  no context-switch slices in the export"
  fail=1
fi
# Strict JSON check when a python3 is around (the exporter also
# self-validates with its own parser before writing).
if command -v python3 >/dev/null 2>&1; then
  if python3 -m json.tool "$OUT" >/dev/null; then
    echo "ok    python3 json.tool parses the export"
  else
    echo "FAIL  export is not valid JSON"
    fail=1
  fi
fi

if [ "$fail" -ne 0 ]; then
  echo "trace_demo: FAIL"
  exit 1
fi
echo "trace_demo: PASS ($(wc -c <"$OUT") bytes of Chrome trace)"
