#!/bin/bash
# Lint gate: clippy across the workspace with warnings promoted to
# errors, plus rustfmt --check. Run before committing.
set -eu
cd "$(dirname "$0")/.."
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check 2>/dev/null || echo "note: rustfmt unavailable or formatting differs (non-fatal)"
echo "OK: clippy clean at -D warnings"
# The slot-memory layer (alias windows, reclaim lists) must reach the
# kernel only through flows-sys so SyscallCounts stay truthful. flowslint
# catches `libc::` tokens; this catches the dependency edge itself.
if grep -Eq '^\s*libc\s*[=.]' crates/mem/Cargo.toml; then
  echo "FAIL: flows-mem must not depend on libc directly — go through flows-sys"
  exit 1
fi
echo "OK: flows-mem has no direct libc dependency"
# Same edge for the transport layer: memfd/futex/socket syscalls must go
# through flows-sys wrappers so multi-process runs count syscalls too.
if grep -Eq '^\s*libc\s*[=.]' crates/net/Cargo.toml; then
  echo "FAIL: flows-net must not depend on libc directly — go through flows-sys"
  exit 1
fi
echo "OK: flows-net has no direct libc dependency"
bash scripts/check.sh
