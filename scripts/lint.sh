#!/bin/bash
# Lint gate: clippy across the workspace with warnings promoted to
# errors, plus rustfmt --check. Run before committing.
set -eu
cd "$(dirname "$0")/.."
cargo clippy --offline --workspace --all-targets -- -D warnings
cargo fmt --check 2>/dev/null || echo "note: rustfmt unavailable or formatting differs (non-fatal)"
echo "OK: clippy clean at -D warnings"
bash scripts/check.sh
