//! Cross-crate integration: the full stack (pup → mem → core → converse →
//! comm → ampi → lb → npb) exercised end-to-end.

use flows::ampi::{run_world, AmpiOptions};
use flows::comm::ReduceOp;
use flows::converse::NetModel;
use flows::lb::{GreedyLb, RefineLb, RotateLb};
use flows::npb::{run as run_mz, MzBench, MzClass, MzConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn btmz_checksum_is_invariant_across_all_strategies() {
    let mut cfg = MzConfig::new(MzBench::BtMz, MzClass::W, 8, 4);
    cfg.iterations = 6;
    let baseline = run_mz(&cfg);
    for (name, lb) in [
        ("greedy", Arc::new(GreedyLb) as Arc<dyn flows::lb::LbStrategy + Send + Sync>),
        ("refine", Arc::new(RefineLb::default())),
        ("rotate", Arc::new(RotateLb)),
    ] {
        let r = run_mz(&cfg.clone().with_lb(lb));
        assert_eq!(
            r.checksum, baseline.checksum,
            "{name}: migration must not perturb the numerics"
        );
    }
}

#[test]
fn load_balancing_tightens_pe_times_under_skew() {
    // BT-MZ class A with 16 ranks on 4 PEs: heavy zone skew. With LB, the
    // spread of per-PE virtual times must shrink.
    let mut cfg = MzConfig::new(MzBench::BtMz, MzClass::A, 16, 4);
    cfg.iterations = 8;
    cfg.sweeps = 3;
    let without = run_mz(&cfg);
    let with = run_mz(&cfg.clone().with_lb(Arc::new(GreedyLb)));
    let spread = |v: &[f64]| {
        let max = v.iter().cloned().fold(0.0f64, f64::max);
        let avg = v.iter().sum::<f64>() / v.len() as f64;
        max / avg.max(1e-12)
    };
    let s_without = spread(&without.pe_busy_s);
    let s_with = spread(&with.pe_busy_s);
    assert!(with.migrations > 0, "greedy must migrate under this skew");
    assert!(
        s_with < s_without,
        "LB must tighten PE time spread: {s_without:.3} -> {s_with:.3}"
    );
}

#[test]
fn many_ranks_per_pe_with_repeated_migration_epochs() {
    // Processor virtualization: 24 ranks on 3 PEs, three LB epochs of
    // rotation — every rank moves three times; totals must be exact.
    let total = Arc::new(AtomicU64::new(0));
    let t2 = total.clone();
    let report = run_world(
        AmpiOptions::new(24, 3)
            .with_net(NetModel::zero())
            .with_strategy(Arc::new(RotateLb)),
        move |ampi| {
            let mut local = 0u64;
            for epoch in 0..3u64 {
                // Some real work whose partial results live on the stack
                // across each migration.
                for i in 0..1000 {
                    local = local.wrapping_add(i * (ampi.rank() as u64 + epoch));
                }
                ampi.migrate();
            }
            // Every rank visited 3 extra PEs, cyclically.
            let expect_pe = (flows::ampi::pe_of_rank(ampi.rank(), 24, 3) + 3) % 3;
            assert_eq!(ampi.current_pe(), expect_pe);
            t2.fetch_add(local, Ordering::Relaxed);
        },
    );
    assert_eq!(report.stranded_threads.iter().sum::<usize>(), 0);
    let expect: u64 = (0..24u64)
        .map(|r| {
            let mut local = 0u64;
            for epoch in 0..3u64 {
                for i in 0..1000 {
                    local = local.wrapping_add(i * (r + epoch));
                }
            }
            local
        })
        .fold(0, u64::wrapping_add);
    assert_eq!(total.load(Ordering::Relaxed), expect);
}

#[test]
fn collectives_interleave_with_pt2pt_and_migration() {
    let ok = Arc::new(AtomicU64::new(0));
    let ok2 = ok.clone();
    run_world(
        AmpiOptions::new(6, 2)
            .with_net(NetModel::zero())
            .with_strategy(Arc::new(RotateLb)),
        move |ampi| {
            let n = ampi.size();
            // Phase 1: neighbor exchange.
            ampi.send((ampi.rank() + 1) % n, 1, vec![ampi.rank() as u8]);
            let (_, _, d) = ampi.recv(None, Some(1));
            let left = (ampi.rank() + n - 1) % n;
            assert_eq!(d[0] as usize, left);
            // Phase 2: allreduce before migration.
            let s = ampi.allreduce_u64_sum(&[1])[0];
            assert_eq!(s as usize, n);
            // Phase 3: migrate, then another round of both.
            ampi.migrate();
            ampi.send((ampi.rank() + 1) % n, 2, vec![ampi.rank() as u8]);
            let (_, _, d) = ampi.recv(None, Some(2));
            assert_eq!(d[0] as usize, left);
            let mx = ampi.allreduce_f64(&[ampi.rank() as f64], ReduceOp::MaxF64)[0];
            assert_eq!(mx as usize, n - 1);
            ok2.fetch_add(1, Ordering::Relaxed);
        },
    );
    assert_eq!(ok.load(Ordering::Relaxed), 6);
}

#[test]
fn threaded_machine_runs_btmz_with_lb() {
    // The whole stack under real OS-thread concurrency.
    let mut cfg = MzConfig::new(MzBench::BtMz, MzClass::S, 4, 2);
    cfg.iterations = 4;
    cfg.threaded = true;
    let plain = run_mz(&cfg);
    let balanced = run_mz(&cfg.clone().with_lb(Arc::new(GreedyLb)));
    assert_eq!(plain.checksum, balanced.checksum);
}

#[test]
fn sp_mz_is_balanced_without_help() {
    // SP-MZ's equal zones mean LB has little to fix (control experiment).
    let mut cfg = MzConfig::new(MzBench::SpMz, MzClass::W, 8, 4);
    cfg.iterations = 6;
    let r = run_mz(&cfg);
    let max = r.pe_busy_s.iter().cloned().fold(0.0f64, f64::max);
    let avg = r.pe_busy_s.iter().sum::<f64>() / r.pe_busy_s.len() as f64;
    assert!(
        max / avg < 1.6,
        "SP-MZ should be roughly balanced by construction: {:?}",
        r.pe_busy_s
    );
}
