//! Shape checks for the paper's headline quantitative claims, with very
//! generous margins so they stay robust on slow/noisy CI hosts. The full
//! curves come from the flows-bench harnesses; these tests pin the
//! *orderings* the paper's conclusions rest on.

use flows::arch::{Context, InitialStack, SwapKind};
use flows::bigsim::{run as run_bigsim, BigSimConfig};
use flows::core::{yield_now, SchedConfig, Scheduler, SharedPools, StackFlavor};
use flows::mem::IsoConfig;
use std::cell::Cell;
use std::rc::Rc;

fn pools(common: usize, slot: usize) -> std::sync::Arc<SharedPools> {
    let mut iso = IsoConfig::for_pes(1);
    iso.base = 0;
    iso.slot_len = slot;
    iso.slots_per_pe = 16;
    SharedPools::new(iso, common).unwrap()
}

/// ns per switch for 2 threads of `flavor` holding `live_stack` bytes.
fn switch_ns(flavor: StackFlavor, live_stack: usize) -> f64 {
    let sched = Scheduler::new(
        0,
        pools(8 << 20, 16 << 20),
        SchedConfig {
            stack_len: 4 << 20,
            ..SchedConfig::default()
        },
    );
    let stop = Rc::new(Cell::new(false));
    for _ in 0..2 {
        let stop = stop.clone();
        sched
            .spawn(flavor, move || {
                fn burn(bytes: usize, stop: &Cell<bool>) {
                    if bytes <= 4096 {
                        while !stop.get() {
                            yield_now();
                        }
                    } else {
                        let mut pad = [0u8; 4096];
                        std::hint::black_box(&mut pad[..]);
                        burn(bytes - 4096, stop);
                        std::hint::black_box(&mut pad[..]);
                    }
                }
                burn(live_stack, &stop);
            })
            .unwrap();
    }
    for _ in 0..32 {
        sched.step();
    }
    let s0 = sched.stats().switches;
    let t0 = std::time::Instant::now();
    while t0.elapsed() < std::time::Duration::from_millis(60) {
        for _ in 0..8 {
            sched.step();
        }
    }
    let ns = t0.elapsed().as_nanos() as f64;
    let switches = (sched.stats().switches - s0).max(1);
    stop.set(true);
    sched.run();
    ns / switches as f64
}

/// §4.2 / Figure 9: stack-copy switch cost grows strongly with live stack;
/// isomalloc stays (nearly) flat; at large stacks isomalloc beats copy by
/// a wide margin and aliasing beats copy too.
#[test]
fn figure9_orderings_hold() {
    let copy_small = switch_ns(StackFlavor::StackCopy, 8 << 10);
    let copy_big = switch_ns(StackFlavor::StackCopy, 2 << 20);
    let iso_small = switch_ns(StackFlavor::Isomalloc, 8 << 10);
    let iso_big = switch_ns(StackFlavor::Isomalloc, 2 << 20);
    let alias_big = switch_ns(StackFlavor::Alias, 2 << 20);

    assert!(
        copy_big > copy_small * 4.0,
        "copy cost must grow with live stack: {copy_small:.0} -> {copy_big:.0} ns"
    );
    assert!(
        iso_big < iso_small * 8.0,
        "isomalloc must stay near-flat: {iso_small:.0} -> {iso_big:.0} ns"
    );
    assert!(
        iso_big * 3.0 < copy_big,
        "isomalloc beats stack-copy at 2 MB: {iso_big:.0} vs {copy_big:.0} ns"
    );
    assert!(
        alias_big * 2.0 < copy_big,
        "aliasing beats stack-copy at 2 MB: {alias_big:.0} vs {copy_big:.0} ns"
    );
}

/// §4.3: one system call in the switch path erases the user-level
/// advantage — the sigmask swap must be many times the minimal swap.
#[test]
fn figure10_syscalls_dominate_minimal_swap() {
    struct PP {
        main: Context,
        flow: Context,
        stop: bool,
        _stack: Vec<u8>,
    }
    thread_local! {
        static EXIT: Cell<*mut PP> = const { Cell::new(std::ptr::null_mut()) };
    }
    fn hook() -> ! {
        let st = EXIT.with(|c| c.get());
        // SAFETY: the PP is leaked (Box::into_raw) and outlives the flow;
        // only the main context runs while the flow is suspended.
        unsafe {
            let mut dead = Context::new((*st).main.kind());
            Context::swap_raw(&raw mut dead, &raw const (*st).main);
        }
        unreachable!()
    }
    extern "C" fn partner(arg: usize) {
        let st = arg as *mut PP;
        // SAFETY: cooperative ping-pong; main runs only while we're
        // suspended, so `*st` is never accessed concurrently.
        unsafe {
            while !(*st).stop {
                Context::swap_raw(&raw mut (*st).flow, &raw const (*st).main);
            }
        }
    }
    let measure = |kind: SwapKind, iters: u64| -> f64 {
        let mut stack = vec![0u8; 64 * 1024];
        // SAFETY: one-past-the-end of the owned vec, used only as stack top.
        let top = unsafe { stack.as_mut_ptr().add(stack.len()) };
        let st = Box::into_raw(Box::new(PP {
            main: Context::new(kind),
            flow: Context::new(kind),
            stop: false,
            _stack: stack,
        }));
        flows::arch::set_exit_hook(hook);
        EXIT.with(|c| c.set(st));
        // SAFETY: st is leaked for the whole measurement; the ping-pong is
        // strictly alternating so main and flow never run concurrently.
        unsafe {
            (*st).flow = InitialStack::build(kind, top, partner, st as usize);
            for _ in 0..100 {
                Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow);
            }
            let t0 = std::time::Instant::now();
            for _ in 0..iters {
                Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow);
            }
            let per = t0.elapsed().as_nanos() as f64 / iters as f64 / 2.0;
            (*st).stop = true;
            Context::swap_raw(&raw mut (*st).main, &raw const (*st).flow);
            drop(Box::from_raw(st));
            per
        }
    };
    let min = measure(SwapKind::Minimal, 200_000);
    let sig = measure(SwapKind::SignalMask, 20_000);
    assert!(
        min < 1_000.0,
        "minimal swap should be well under a microsecond: {min:.0} ns"
    );
    assert!(
        sig > min * 3.0,
        "sigprocmask syscalls must dominate: minimal {min:.0} ns vs sigmask {sig:.0} ns"
    );
}

/// §4.4 / Figure 11: BigSim's modeled time-per-step falls as simulating
/// PEs grow, with the answer unchanged.
#[test]
fn figure11_scaling_shape_holds() {
    let base = BigSimConfig {
        target_procs: 512,
        sim_pes: 2,
        steps: 2,
        particles_per_proc: 10,
        stack_bytes: 16 * 1024,
        threaded: false,
        target: Default::default(),
        faults: None,
        tracing: false,
    };
    let r2 = run_bigsim(&base);
    let r8 = run_bigsim(&BigSimConfig {
        sim_pes: 8,
        ..base.clone()
    });
    assert_eq!(r2.checksum, r8.checksum, "PE count must not change physics");
    assert!(
        (r8.modeled_step_ns as f64) < r2.modeled_step_ns as f64 * 0.55,
        "4x the PEs should model >=1.8x faster: {} vs {}",
        r2.modeled_step_ns,
        r8.modeled_step_ns
    );
}

/// §4.1 / Table 2 flavor: a single PE comfortably runs tens of thousands
/// of user-level threads — the regime where kernel mechanisms tap out.
#[test]
fn tens_of_thousands_of_user_threads() {
    let sched = Scheduler::new(0, pools(1 << 20, 1 << 20), SchedConfig::default());
    let done = Rc::new(Cell::new(0u64));
    const N: usize = 20_000;
    for _ in 0..N {
        let done = done.clone();
        sched
            .spawn_with(StackFlavor::Standard, 16 * 1024, move || {
                yield_now();
                done.set(done.get() + 1);
            })
            .unwrap();
    }
    sched.run();
    assert_eq!(done.get(), N as u64);
    assert_eq!(sched.stats().completed, N as u64);
}
