//! End-to-end tracing: a 4-PE AMPI job with RotateLB migrations and a
//! lossy transport plan, traced, summarized, and exported as Chrome-trace
//! JSON (the ISSUE-4 acceptance scenario).
//!
//! NOTE on process-global state: `MachineBuilder::tracing(true)` turns the
//! process-wide gate on and leaves it on, so the untraced control run
//! executes *first* in the same test (test binaries run tests
//! concurrently in one process; the gate is the only shared state, and
//! untraced machines have no rings, so a stray enabled gate only costs a
//! TLS null check).

use flows::ampi::{run_world, AmpiOptions};
use flows::converse::{FaultPlan, NetModel};
use flows::lb::RotateLb;
use std::collections::HashSet;
use std::sync::Arc;

fn traced_job(tracing: bool) -> flows::converse::MachineReport {
    let opts = AmpiOptions::new(8, 4)
        .with_net(NetModel::zero())
        .with_strategy(Arc::new(RotateLb))
        .with_faults(FaultPlan::new(0x7ace).drop_prob(0.25))
        .tracing(tracing);
    run_world(opts, |a| {
        let next = (a.rank() + 1) % a.size();
        let prev = (a.rank() + a.size() - 1) % a.size();
        for it in 0..3u64 {
            let (_, _, data) = a.sendrecv(next, it, vec![a.rank() as u8; 32], Some(prev), None);
            assert_eq!(data.len(), 32);
            if it == 1 {
                a.checkpoint();
            }
            a.migrate();
        }
    })
}

#[test]
fn traced_ampi_run_exports_a_complete_chrome_timeline() {
    // Control first (see the module note): no rings, no summary.
    let control = traced_job(false);
    assert!(control.trace.is_none(), "tracing off ⇒ no summary");
    assert!(control.trace_rings.is_empty(), "tracing off ⇒ no rings");

    let report = traced_job(true);
    assert_eq!(report.trace_rings.len(), 4, "one ring per PE");
    let sum = report.trace.as_ref().expect("tracing on ⇒ summary present");
    assert_eq!(sum.pes.len(), 4);

    // Every event family the acceptance criterion names must be present
    // machine-wide: thread lifecycle, context switches, messages,
    // migrations, faults (plus checkpoints and LB epochs).
    let created: u64 = sum.pes.iter().map(|p| p.threads_created).sum();
    let exited: u64 = sum.pes.iter().map(|p| p.threads_exited).sum();
    let switches: u64 = sum.pes.iter().map(|p| p.switches).sum();
    let sent: u64 = sum.pes.iter().map(|p| p.msgs_sent).sum();
    let recv: u64 = sum.pes.iter().map(|p| p.msgs_recv).sum();
    let migs_out: u64 = sum.pes.iter().map(|p| p.migrations_out).sum();
    let migs_in: u64 = sum.pes.iter().map(|p| p.migrations_in).sum();
    let ckpts: u64 = sum.pes.iter().map(|p| p.checkpoints).sum();
    let faults: u64 = sum.pes.iter().map(|p| p.faults).sum();
    let epochs: u64 = sum.pes.iter().map(|p| p.lb_epochs).sum();
    assert_eq!(created, 8, "one ThreadCreate per rank");
    assert_eq!(exited, 8, "every rank ran to completion");
    assert!(switches >= 8, "at least one switch per rank: {switches}");
    assert!(sent > 0 && recv > 0, "message events: {sent}/{recv}");
    // RotateLB moves all 8 ranks at each of the 3 migrate() points, and
    // the coordinated checkpoint images each rank through the same
    // pack/unpack path (8 more of each).
    assert_eq!(migs_out, 24 + 8, "MigPack per rotation + per checkpoint image");
    assert_eq!(migs_in, 24 + 8, "MigUnpack per rotation + per restore");
    assert_eq!(ckpts, 8, "one Checkpoint event per rank");
    assert!(faults > 0, "drop_prob 0.25 must produce fault events");
    assert!(epochs >= 3, "one LbEpoch per migrate(): {epochs}");
    assert_eq!(sum.migrations.len(), 64, "32 packs + 32 unpacks, timeline-sorted");
    assert!(sum.migrations.windows(2).all(|w| w[0].ts <= w[1].ts));

    // The utilization figures are well-formed.
    for p in &sum.pes {
        assert!((0.0..=1.0).contains(&p.utilization), "{}", p.utilization);
        assert_eq!(p.grainsize_hist.len(), flows::trace::GRAIN_BUCKETS);
    }

    // The summary itself round-trips to valid JSON.
    flows::trace::chrome::validate_json(&sum.to_json()).expect("summary JSON");

    // Chrome export: valid JSON with every acceptance event family named.
    let json = flows::trace::chrome::chrome_trace_json(&report.trace_rings);
    flows::trace::chrome::validate_json(&json).expect("chrome JSON");
    let have: HashSet<&str> = [
        "thread_create",
        "thread_exit",
        "\"ph\":\"X\"", // context-switch slices
        "msg_send",
        "msg_recv",
        "mig_pack",
        "mig_unpack",
        "checkpoint",
        "lb_epoch",
        "fault_drop",
    ]
    .into_iter()
    .filter(|k| json.contains(*k))
    .collect();
    assert_eq!(have.len(), 10, "chrome export is missing families: {have:?}");

    // Per-PE syscall counters rode along (det drive mode: machine-wide
    // delta at index 0).
    assert_eq!(report.syscalls.len(), 4);
    assert!(report.syscalls[0].total() > 0, "stack mmaps at least");
}

#[test]
fn bigsim_trace_carries_virtual_time_steps() {
    let mut cfg = flows::bigsim::BigSimConfig::small();
    cfg.target_procs = 64;
    cfg.steps = 3;
    cfg.particles_per_proc = 4;
    cfg.tracing = true;
    let r = flows::bigsim::run(&cfg);
    let sum = r.trace.expect("tracing on");
    let switches: u64 = sum.pes.iter().map(|p| p.switches).sum();
    assert!(switches as usize >= 64 * 3, "every thread every step");
    // VtStep instants land in the chrome export via the ring.
    assert_eq!(sum.pes.len(), 2);
}
