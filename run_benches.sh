#!/bin/bash
# Lint + perf-regression gates, then regenerates every table/figure
# harness and the criterion benches, capturing everything to stdout
# (redirect to bench_output.txt to refresh the committed capture).
set -u
cd "$(dirname "$0")"

# Gates first: clippy -D warnings plus the safety gate (flowslint +
# sanitize-feature test pass, via lint.sh -> check.sh), then the msgpath
# throughput floor check (fails fast if the message path regressed),
# then the tracing smoke test (traced AMPI job exports a complete
# Chrome timeline), then the chaos soak (12 seeded crash/stall/loss
# schedules must heal online with bit-identical checksums; refreshes
# BENCH_ft.json).
bash scripts/lint.sh || exit 1
bash scripts/bench_smoke.sh || exit 1
bash scripts/trace_demo.sh || exit 1
bash scripts/chaos.sh || exit 1

{
echo "=== flows bench harnesses ($(date -u +%FT%TZ), host: $(uname -m), $(nproc) cpu) ==="
for b in table1_portability table2_limits fig10_minswap fig9_stacksize fig4_ctxswitch_flows fig11_bigsim fig12_btmz fault_recovery ft_online msgpath sched_migrate; do
  echo; echo "### $b"
  timeout 900 cargo run --release -q -p flows-bench --bin "$b" 2>&1
done
echo; echo "### criterion micro-benches"
timeout 1200 cargo bench -p flows-bench 2>&1 | grep -vE "^(Benchmarking|Found|  [0-9]|  high|  low|Warning)"
}
